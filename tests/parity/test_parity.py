"""Differential parity: batch replay vs the scalar oracle, end to end.

Every workload in the registry runs across the no-prefetch baseline, the
conventional stream prefetcher, and the full DROPLET setup; each
(workload, setup) pair is simulated twice — ``fast_path='off'`` (the
scalar reference oracle) and ``fast_path='on'`` — and the two runs must
produce *bit-identical* signatures: cycles, cycle stacks, per-level
per-type counters, DRAM statistics, and complete cache contents
including LRU orderings (see :mod:`tests.parity.signature`).
"""

import numpy as np
import pytest

from repro.system import Machine, SystemConfig
from repro.trace import DataType, TraceBuffer
from repro.workloads.registry import WORKLOADS, get_workload

from .signature import machine_signature, run_both_paths

MAX_REFS = 20_000
SETUPS = ("none", "stream", "droplet")


@pytest.fixture(scope="module")
def workload_runs(small_kron, small_kron_weighted):
    """One finalized trace per registered workload (six of them)."""
    runs = {}
    for name in WORKLOADS:
        graph = small_kron_weighted if name == "SSSP" else small_kron
        runs[name] = get_workload(name).run(graph, max_refs=MAX_REFS)
    return runs


def test_registry_has_six_workloads():
    assert len(WORKLOADS) == 6, sorted(WORKLOADS)


@pytest.mark.parametrize("setup", SETUPS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_fast_path_is_bit_identical(workload_runs, workload, setup):
    run = workload_runs[workload]
    cfg = SystemConfig.scaled_baseline()

    def make_machine(fast_path):
        return Machine(cfg, layout=run.layout, setup=setup, fast_path=fast_path)

    sig_scalar, sig_fast, result = run_both_paths(make_machine, run.trace)
    assert sig_scalar == sig_fast
    assert result.fast_path


def test_auto_mode_matches_forced_modes(workload_runs):
    """``fast_path='auto'`` picks the fast path for eligible setups and
    produces the same results as both forced modes."""
    run = workload_runs["PR"]
    cfg = SystemConfig.scaled_baseline()
    results = {}
    for mode in ("off", "on", "auto"):
        m = Machine(cfg, layout=run.layout, setup="none", fast_path=mode)
        results[mode] = (machine_signature(m.run(run.trace), m), m)
    assert results["off"][0] == results["on"][0] == results["auto"][0]


@pytest.mark.parametrize("name", ["monoDROPLETL1", "imp"])
def test_fast_path_refuses_l1_filling_setups(workload_runs, name):
    """Forcing the fast path on an ineligible setup must raise, never
    silently fall back to an unsound replay."""
    from repro.droplet.composite import make_prefetch_setup
    from repro.system.fastreplay import eligible_setup

    assert not eligible_setup(make_prefetch_setup(name))
    run = workload_runs["PR"]
    with pytest.raises(ValueError):
        Machine(
            SystemConfig.scaled_baseline(),
            layout=run.layout,
            setup=name,
            fast_path="on",
        )
    # 'auto' on the same setup silently takes the sound scalar path.
    m = Machine(
        SystemConfig.scaled_baseline(),
        layout=run.layout,
        setup=name,
        fast_path="auto",
    )
    assert not m.fast_path


class TestSyntheticEdgeCases:
    """Hand-built traces that aim at the replay engine's seams."""

    def _compare(self, trace, setup="none"):
        cfg = SystemConfig.scaled_baseline()

        def make_machine(fast_path):
            return Machine(cfg, setup=setup, fast_path=fast_path)

        sig_scalar, sig_fast, _ = run_both_paths(make_machine, trace)
        assert sig_scalar == sig_fast

    def test_single_reference(self):
        tb = TraceBuffer(name="one")
        tb.load(0, DataType.PROPERTY, gap=1)
        self._compare(tb.finalize())

    def test_all_hits_after_warmup(self):
        tb = TraceBuffer(name="warm")
        for rep in range(50):
            for i in range(8):
                tb.load(i * 64, DataType.PROPERTY, gap=1)
        self._compare(tb.finalize())

    def test_store_heavy_reuse(self):
        rng = np.random.default_rng(7)
        tb = TraceBuffer(name="stores")
        for _ in range(6000):
            addr = int(rng.integers(0, 400)) * 64
            if rng.random() < 0.5:
                tb.store(addr, DataType.PROPERTY, gap=1)
            else:
                tb.load(addr, DataType.PROPERTY, gap=1)
        self._compare(tb.finalize())

    def test_dependent_chains_span_windows(self):
        tb = TraceBuffer(name="chains")
        rng = np.random.default_rng(13)
        prev = -1
        for i in range(5000):
            addr = int(rng.integers(0, 1 << 14)) * 64
            dep = prev if prev >= 0 and i % 3 else -1
            prev = tb.load(addr, DataType.PROPERTY, dep=dep, gap=3)
        self._compare(tb.finalize())

    def test_thrashing_working_set(self):
        """Working set far beyond every level: miss-dominated replay."""
        tb = TraceBuffer(name="thrash")
        rng = np.random.default_rng(17)
        for _ in range(4000):
            tb.load(int(rng.integers(0, 1 << 20)) * 64,
                    DataType.STRUCTURE, gap=1)
        self._compare(tb.finalize())

    def test_zero_gap_references(self):
        tb = TraceBuffer(name="dense")
        for i in range(2000):
            tb.load((i % 64) * 64, DataType.INTERMEDIATE, gap=0)
        self._compare(tb.finalize())

"""Property-based fuzz of the batch replay engine against the scalar oracle.

Two fuzz surfaces the hand-built synthetic traces can't cover:

* **prefetch-window boundaries** — randomized segment traces (sequential
  streams, strides, hashed reuse, store bursts, dependency chains) are
  replayed through both paths with the stream prefetcher attached, so
  windows open/close at arbitrary points relative to prefetch fills and
  back-invalidations;
* **plan-cache invalidation** — one trace replayed across machines with
  *different L1 geometries* must rebuild its cached replay plan whenever
  the geometry key changes, never reusing tables planned for another
  set/way layout.

Every example requires a full bit-identical machine signature, not just
matching hit counts.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheConfig
from repro.system import Machine, SystemConfig
from repro.trace import DataType, TraceBuffer

from .signature import machine_signature

KINDS = (DataType.STRUCTURE, DataType.PROPERTY, DataType.INTERMEDIATE)

# (pattern, region, length, kind, gap): pattern 0=ascending stream,
# 1=descending, 2=strided, 3=hashed reuse, 4=store burst, 5=dep chain.
segments = st.lists(
    st.tuples(
        st.integers(0, 5),
        st.integers(0, 7),
        st.integers(4, 48),
        st.integers(0, 2),
        st.integers(0, 3),
    ),
    min_size=1,
    max_size=8,
)


def build_trace(segs):
    """Deterministically expand segment tuples into a finalized trace."""
    tb = TraceBuffer(name="fuzz")
    prev = -1
    for pattern, region, length, kind_ix, gap in segs:
        base = region * 512  # line number of the region start
        kind = KINDS[kind_ix]
        for i in range(length):
            if pattern == 0:
                line = base + i
            elif pattern == 1:
                line = base + 511 - i
            elif pattern == 2:
                line = base + (i * 3) % 512
            else:
                line = base + (i * 2654435761) % 97
            addr = line * 64
            if pattern == 4:
                prev = tb.store(addr, kind, gap=gap)
            elif pattern == 5:
                dep = prev if prev >= 0 and i % 2 else -1
                prev = tb.load(addr, kind, dep=dep, gap=gap)
            else:
                prev = tb.load(addr, kind, gap=gap)
    return tb.finalize()


def both_signatures(cfg, trace, setup):
    """Run scalar and fast paths; ``setup`` is a name or a zero-argument
    factory (each machine must get fresh prefetcher state)."""
    sigs = []
    for mode in ("off", "on"):
        built = setup() if callable(setup) else setup
        m = Machine(cfg, setup=built, fast_path=mode)
        result = m.run(trace)
        if mode == "on":
            assert result.fast_path
        sigs.append(machine_signature(result, m))
    return sigs


class TestPrefetchWindowFuzz:
    @settings(max_examples=40, deadline=None)
    @given(segments)
    def test_stream_setup_bit_identical(self, segs):
        cfg = SystemConfig.scaled_baseline()
        scalar, fast = both_signatures(cfg, build_trace(segs), "stream")
        assert scalar == fast

    @settings(max_examples=15, deadline=None)
    @given(segments)
    def test_ghb_setup_bit_identical(self, segs):
        """Same traces through the GHB prefetcher, whose delta-correlated
        fills land relative to window boundaries very differently from
        the streamer's."""
        cfg = SystemConfig.scaled_baseline()
        scalar, fast = both_signatures(cfg, build_trace(segs), "ghb")
        assert scalar == fast

    @settings(max_examples=15, deadline=None)
    @given(segments)
    def test_l1_filling_degraded_tier_bit_identical(self, segs):
        """An L1-filling streamer (the mono-prefetcher geometry, minus
        the layout-dependent MPP) fuzzes the *degraded* replay tier:
        per-window scalar fallback with sticky poison on prefetched L1
        lines."""
        from repro.droplet.composite import PrefetchSetup
        from repro.prefetch.stream import StreamPrefetcher

        def l1_stream():
            return PrefetchSetup(
                "l1stream", StreamPrefetcher(), fill_into_l1=True
            )

        cfg = SystemConfig.scaled_baseline()
        m = Machine(cfg, setup=l1_stream(), fast_path="on")
        assert m.fast_path == "degraded"
        scalar, fast = both_signatures(cfg, build_trace(segs), l1_stream)
        assert scalar == fast


def _l1_variant(cfg, size_kib, assoc):
    l1 = dataclasses.replace(cfg.l1, size_bytes=size_kib * 1024,
                             associativity=assoc)
    return dataclasses.replace(cfg, l1=l1)


class TestPlanCacheInvalidationFuzz:
    GEOMETRIES = ((2, 2), (4, 4), (8, 8), (4, 8))

    @settings(max_examples=20, deadline=None)
    @given(segments, st.lists(st.integers(0, 3), min_size=2, max_size=4))
    def test_geometry_changes_rebuild_plan(self, segs, order):
        """Replaying one trace across alternating L1 geometries must
        re-plan per geometry: a plan cached for (sets, ways) of one
        machine is invalid for the next and would corrupt its replay."""
        base = SystemConfig.scaled_baseline()
        trace = build_trace(segs)
        for ix in order:
            cfg = _l1_variant(base, *self.GEOMETRIES[ix])
            scalar, fast = both_signatures(cfg, trace, "stream")
            assert scalar == fast
            cached = getattr(trace, "_replay_tables", None)
            assert cached is not None
            geometry, _tables = cached
            m = Machine(cfg, setup="none", fast_path="on")
            assert geometry == m._plan_key()

    def test_plan_cache_is_reused_for_same_geometry(self):
        """Same geometry twice → the cached tables object is identical
        (no silent replan), and results still match the oracle."""
        cfg = SystemConfig.scaled_baseline()
        trace = build_trace([(0, 0, 32, 0, 1), (3, 1, 32, 1, 1)])
        Machine(cfg, setup="none", fast_path="on").run(trace)
        first = trace._replay_tables
        Machine(cfg, setup="none", fast_path="on").run(trace)
        assert trace._replay_tables[1] is first[1]
        alt = _l1_variant(cfg, 2, 2)
        Machine(alt, setup="none", fast_path="on").run(trace)
        assert trace._replay_tables[1] is not first[1]

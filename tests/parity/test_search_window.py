"""Fast-path parity over the tuner's short rung-0 windows.

The successive-halving tuner evaluates early rungs on truncated windows
(``max_refs`` cut by ``eta^k``) with ``fast_path='auto'``.  Pruning
decisions therefore depend on batch replay agreeing with the scalar
oracle *on short windows and under the search's machine knobs* — a
different surface than the full-trace parity matrix in
``test_parity.py``.  Every summary metric must match bit for bit.
"""

from __future__ import annotations

import pytest

from repro.runtime import RetryPolicy, SweepRunner, TraceCache
from repro.search.space import parse_space

WORKLOAD, DATASET = "PR", "kron"
SCALE_SHIFT = -6
#: The golden micro-space, evaluated at its rung-0 window.
SPACE = "setup=none,stream;llc=1,2"
RUNG0_REFS = 750


@pytest.fixture(scope="module")
def windows(tmp_path_factory):
    """The micro-space evaluated twice: scalar oracle vs auto fast path."""
    tmp_path = tmp_path_factory.mktemp("search-window")
    cache = TraceCache(tmp_path / "traces")
    out = {}
    for mode in ("off", "auto"):
        points = [
            c.point(
                WORKLOAD,
                DATASET,
                RUNG0_REFS,
                scale_shift=SCALE_SHIFT,
                fast_path=mode,
            )
            for c in parse_space(SPACE)
        ]
        runner = SweepRunner(
            workers=0,
            trace_cache=cache,
            return_full=False,
            retry=RetryPolicy(max_attempts=1),
        )
        report = runner.run(points)
        report.raise_errors()
        out[mode] = report.points
    return out


def test_rung0_summaries_are_bit_identical(windows):
    for scalar, fast in zip(windows["off"], windows["auto"]):
        assert scalar.point.label == fast.point.label
        assert scalar.summary == fast.summary, scalar.point.label


def test_auto_mode_actually_took_the_fast_path(windows):
    # The guard above would be vacuous if 'auto' silently degraded to
    # the scalar loop for the whole space.
    assert any(r.replay_tier == "vector" for r in windows["auto"])
    assert all(r.replay_tier == "scalar" for r in windows["off"])

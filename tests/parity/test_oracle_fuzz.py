"""Fuzz the production Cache against the naive LRU oracle.

Randomized operation streams (demand loads/stores, prefetch fills,
back-invalidations) must leave :class:`repro.cache.cache.Cache` and
:class:`tests.parity.oracle.LRUOracle` in identical states: same
hit/miss outcomes, same victims (including dirty-writeback victims),
same prefetch-fill counts, and the same per-set LRU orderings.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig
from repro.trace import DataType

from .oracle import LRUOracle

NUM_SETS = 4
ASSOC = 4
LINE = 64


def make_cache() -> Cache:
    return Cache(
        CacheConfig(
            name="fuzz",
            size_bytes=NUM_SETS * ASSOC * LINE,
            associativity=ASSOC,
            line_size=LINE,
        )
    )


# (op, line, flag): op 0=load, 1=store, 2=prefetch fill, 3=invalidate.
ops = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 23)),
    min_size=1,
    max_size=120,
)


def apply_demand(cache: Cache, line: int, store: bool) -> tuple[bool, object]:
    """One demand access to the bare Cache (the hierarchy's inner steps)."""
    meta = cache.lookup(line)
    if meta is not None:
        if store:
            meta.dirty = True
        return True, None
    victim = cache.insert(line, DataType.PROPERTY, dirty=store)
    return False, victim


class TestCacheVersusOracle:
    @settings(max_examples=200, deadline=None)
    @given(ops)
    def test_same_outcomes_and_final_state(self, stream):
        cache = make_cache()
        oracle = LRUOracle(NUM_SETS, ASSOC)
        dirty_victims: list[int] = []
        for op, line in stream:
            if op in (0, 1):
                hit, victim = apply_demand(cache, line, store=op == 1)
                assert hit == oracle.access(line, store=op == 1)
                if victim is not None and victim[1].dirty:
                    dirty_victims.append(victim[0])
            elif op == 2:
                victim = cache.insert(line, DataType.STRUCTURE, prefetched=True)
                ovictim = oracle.fill(line, prefetched=True)
                assert (victim is None) == (ovictim is None)
                if victim is not None:
                    assert victim[0] == ovictim[0]
                    assert victim[1].dirty == ovictim[1]["dirty"]
                    if victim[1].dirty:
                        dirty_victims.append(victim[0])
            else:
                meta = cache.invalidate(line)
                ometa = oracle.invalidate(line)
                assert (meta is None) == (ometa is None)
                if meta is not None:
                    assert meta.dirty == ometa["dirty"]
                    assert meta.prefetched == ometa["prefetched"]
        # Final state: identical residency, LRU order, and per-line flags.
        for si in range(NUM_SETS):
            expected = oracle.lru_order(si)
            assert list(cache._sets[si]) == expected
            for line in expected:
                got = cache._sets[si][line]
                want = oracle.sets[si][line]
                assert got.dirty == want["dirty"]
                assert got.prefetched == want["prefetched"]
        assert cache.stats.evictions == oracle.evictions
        assert cache.stats.prefetch_fills == oracle.prefetch_fills
        assert dirty_victims == oracle.dirty_evicted

    @settings(max_examples=100, deadline=None)
    @given(ops)
    def test_touch_run_matches_scalar_lookups(self, stream):
        """The batched touch API equals per-access lookups on any state."""
        import copy

        cache = make_cache()
        for op, line in stream:
            if op == 3:
                cache.invalidate(line)
            else:
                apply_demand(cache, line, store=op == 1)
        resident = cache.resident_lines()
        assume(resident)
        # A "run" may touch any resident lines, repeats included.
        run = [resident[(7 * i) % len(resident)] for i in range(len(stream))]
        stores = [i % 3 == 0 for i in range(len(run))]
        batched = copy.deepcopy(cache)
        batched.touch_run(run, stores)
        for line, store in zip(run, stores):
            meta = cache.lookup(line)
            if store:
                meta.dirty = True
        for si in range(NUM_SETS):
            assert list(cache._sets[si]) == list(batched._sets[si])
            for line, meta in cache._sets[si].items():
                assert meta.dirty == batched._sets[si][line].dirty

    def test_add_hits_matches_record(self):
        """Folded hit counts equal per-access stats.record calls."""
        a = make_cache()
        b = make_cache()
        seq = [DataType.STRUCTURE] * 3 + [DataType.PROPERTY] * 5 + [
            DataType.INTERMEDIATE
        ] * 2
        for kind in seq:
            a.stats.record(kind, hit=True)
        b.add_hits({int(DataType.STRUCTURE): 3, int(DataType.PROPERTY): 5,
                    int(DataType.INTERMEDIATE): 2})
        assert {int(k): v for k, v in a.stats.hits.items()} == {
            int(k): v for k, v in b.stats.hits.items()
        }

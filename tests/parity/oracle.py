"""A deliberately naive set-associative LRU cache oracle.

The production :class:`repro.cache.cache.Cache` is optimized (OrderedDict
LRU, batched touch API, fast-path counter folding); this oracle is the
opposite — a dict-of-dicts transcription of the textbook definition, kept
small enough to audit by eye.  The fuzz suite drives both with the same
operation streams and demands identical behaviour.
"""

from __future__ import annotations

__all__ = ["LRUOracle"]


class LRUOracle:
    """Textbook set-associative LRU cache (insertion-ordered dicts)."""

    def __init__(self, num_sets: int, associativity: int):
        self.num_sets = num_sets
        self.associativity = associativity
        # line -> {"dirty": bool, "prefetched": bool}; dict order = LRU
        # order, least recently used first.
        self.sets = [dict() for _ in range(num_sets)]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_fills = 0
        self.dirty_evicted: list[int] = []

    def access(self, line: int, store: bool = False) -> bool:
        """Demand access; fills on miss.  Returns True on hit."""
        s = self.sets[line % self.num_sets]
        meta = s.pop(line, None)
        if meta is not None:
            self.hits += 1
            meta["dirty"] = meta["dirty"] or store
            s[line] = meta  # re-append == move to MRU
            return True
        self.misses += 1
        self.fill(line, dirty=store)
        return False

    def fill(self, line: int, dirty: bool = False, prefetched: bool = False):
        """Install ``line``; returns the evicted (line, meta) if any."""
        s = self.sets[line % self.num_sets]
        meta = s.pop(line, None)
        if meta is not None:  # already resident: refresh LRU, merge dirty
            meta["dirty"] = meta["dirty"] or dirty
            s[line] = meta
            return None
        victim = None
        if len(s) >= self.associativity:
            vline = next(iter(s))  # oldest entry = LRU victim
            vmeta = s.pop(vline)
            self.evictions += 1
            if vmeta["dirty"]:
                self.dirty_evicted.append(vline)
            victim = (vline, vmeta)
        s[line] = {"dirty": dirty, "prefetched": prefetched}
        if prefetched:
            self.prefetch_fills += 1
        return victim

    def invalidate(self, line: int):
        """Back-invalidate ``line``; returns its metadata if resident."""
        return self.sets[line % self.num_sets].pop(line, None)

    def lru_order(self, set_index: int) -> list[int]:
        """Lines of one set, least recently used first."""
        return list(self.sets[set_index])

"""Full-machine result signatures for fast-vs-scalar differential tests.

A signature captures everything a simulation can observe: timing, cycle
stack, per-level per-type counters, DRAM statistics, and the *complete*
cache contents of every level — including per-set LRU ordering and
per-line flags, so even a drift that never reaches a counter fails the
comparison.

The single deliberate exclusion is the L1 ``used`` bit: it exists to
measure prefetch usefulness, and on fast-path-eligible setups no
prefetched line ever enters the L1, so the bit is unobservable there
(the lean replay path skips maintaining it).  L2/L3 ``used`` bits are
compared.
"""

from __future__ import annotations

__all__ = ["machine_signature", "run_both_paths"]


def _cache_contents(cache, include_used: bool):
    out = []
    for s in cache._sets:
        members = []
        for line, meta in s.items():  # iteration order == LRU order
            members.append(
                (
                    line,
                    meta.dirty,
                    meta.prefetched,
                    meta.kind,
                    meta.used if include_used else None,
                )
            )
        out.append(members)
    return out


def _stats_sig(stats):
    return (
        sorted((int(k), v) for k, v in stats.hits.items()),
        sorted((int(k), v) for k, v in stats.misses.items()),
        stats.prefetch_hits,
        stats.prefetch_fills,
        stats.evictions,
        stats.back_invalidations,
    )


def machine_signature(result, machine):
    """Everything observable about one finished simulation."""
    h = machine.hierarchy
    levels = [h.l1s[0]] + (list(h.l2s) if h.l2s else []) + [h.l3]
    dram = machine.dram.stats
    return (
        result.cycles,
        result.instructions,
        result.total_miss_latency,
        result.total_exposed_latency,
        result.cycle_stack.base,
        sorted(result.cycle_stack.stall.items()),
        result.cycle_stack.instructions,
        [_stats_sig(level.stats) for level in levels],
        sorted(vars(dram).items()) if hasattr(dram, "__dict__") else repr(dram),
        _cache_contents(h.l1s[0], include_used=False),
        [_cache_contents(c, include_used=True) for c in (h.l2s or [])],
        _cache_contents(h.l3, include_used=True),
    )


def run_both_paths(make_machine, trace):
    """Run ``trace`` through fresh scalar and fast machines.

    ``make_machine(fast_path)`` must build a *new* machine each call.
    Returns ``(scalar_signature, fast_signature, fast_result)``.
    """
    scalar = make_machine("off")
    sig_scalar = machine_signature(scalar.run(trace), scalar)
    fast = make_machine("on")
    result = fast.run(trace)
    assert result.fast_path, "fast_path='on' did not take the fast path"
    return sig_scalar, machine_signature(result, fast), result

"""Tests for the cross-model validation utilities."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace import DataType, TraceBuffer, gather_trace, random_trace, stream_trace
from repro.validation import predicted_hit_ratio, validate_trace


class TestExactAgreement:
    def test_fully_associative_agrees_on_random(self):
        report = validate_trace(random_trace(3000, region_bytes=1 << 18), 64)
        assert report.agrees
        assert report.conflict_miss_ratio == 0.0

    def test_fully_associative_agrees_on_gather(self):
        report = validate_trace(gather_trace(2000, property_region=1 << 16), 128)
        assert report.agrees

    def test_stream_no_line_reuse_beyond_first(self):
        # 64-byte stride: every access a new line, no reuses at all.
        report = validate_trace(stream_trace(500, step=64), 32)
        assert report.predicted_hits == 0
        assert report.simulated_hits == 0

    @given(st.lists(st.integers(0, 40), min_size=1, max_size=300), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_property_exact_agreement(self, lines, capacity):
        tb = TraceBuffer()
        for line in lines:
            tb.load(line * 64, DataType.PROPERTY)
        report = validate_trace(tb.finalize(), capacity)
        assert report.agrees


class TestSetAssociative:
    def test_set_associative_deviation_is_small(self):
        # Set-associative LRU may deviate either way from the FA
        # prediction (set partitioning is not strictly dominated), but on
        # a uniform random stream the deviation must be tiny.
        trace = random_trace(4000, region_bytes=1 << 18)
        report = validate_trace(trace, 64, associativity=2)
        assert abs(report.conflict_miss_ratio) < 0.02

    def test_full_associativity_closes_the_gap(self):
        trace = random_trace(4000, region_bytes=1 << 18, seed=4)
        exact = validate_trace(trace, 64, associativity=64)
        assert exact.agrees
        assert exact.conflict_miss_ratio == 0.0


class TestPredictedRatio:
    def test_single_hot_line(self):
        tb = TraceBuffer()
        for _ in range(100):
            tb.load(0, DataType.PROPERTY)
        ratio = predicted_hit_ratio(tb.finalize(), capacity_lines=1)
        assert ratio == pytest.approx(0.99)

    def test_empty_trace(self):
        assert predicted_hit_ratio(TraceBuffer().finalize(), 8) == 0.0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            validate_trace(stream_trace(10), 0)

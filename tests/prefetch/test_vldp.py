"""Unit tests for the VLDP prefetcher."""

from repro.prefetch import VLDPPrefetcher
from repro.trace import DataType


def misses(pf, lines):
    out = []
    for line in lines:
        out.extend(pf.observe_miss(line, DataType.PROPERTY, False, 0))
    return out


class TestVLDP:
    def test_unit_stride_within_page(self):
        pf = VLDPPrefetcher(degree=2)
        out = misses(pf, [0, 1, 2, 3])
        assert 4 in out

    def test_longer_history_takes_precedence(self):
        pf = VLDPPrefetcher(degree=1)
        # Train: after history (1, 2) comes 3 (DPT2); plain (2,) maps to 9
        # (DPT1, overwritten later in page 1).
        misses(pf, [0, 1, 3, 6])       # deltas 1, 2, 3 in page 0
        misses(pf, [100, 102, 111])    # deltas 2, 9 in page 1
        # Fresh page reaching history (1, 2): DPT2 must predict +3 (206),
        # not DPT1's (2,)->9 which would give 212.
        misses(pf, [200, 201])
        out = pf.observe_miss(203, DataType.PROPERTY, False, 0)
        assert out == [206]

    def test_opt_predicts_first_delta_of_fresh_page(self):
        pf = VLDPPrefetcher(degree=1)
        # Two pages, both first-accessed at offset 5 with first delta +3,
        # training OPT[5] = 3.
        misses(pf, [0 * 64 + 5, 0 * 64 + 8])
        misses(pf, [1 * 64 + 5, 1 * 64 + 8])
        out = misses(pf, [2 * 64 + 5])
        assert out == [2 * 64 + 8]

    def test_predictions_stay_in_page(self):
        pf = VLDPPrefetcher(degree=8, page_lines=64)
        out = misses(pf, [60, 61, 62])
        assert all(line < 64 for line in out)

    def test_zero_delta_ignored(self):
        pf = VLDPPrefetcher()
        assert misses(pf, [7, 7, 7]) == []

    def test_dhb_lru_bounded(self):
        pf = VLDPPrefetcher(dhb_pages=2)
        misses(pf, [0 * 64, 1 * 64, 2 * 64, 3 * 64])
        assert len(pf._dhb) <= 2

    def test_random_deltas_give_garbage_not_crash(self):
        import random

        rng = random.Random(4)
        pf = VLDPPrefetcher()
        out = misses(pf, [rng.randrange(0, 64) for _ in range(200)])
        # Predictions exist (tables always answer) but are noise — the
        # paper's point about VLDP on property data.
        assert isinstance(out, list)

    def test_reset(self):
        pf = VLDPPrefetcher()
        misses(pf, [0, 1, 2, 3])
        pf.reset()
        assert len(pf._dhb) == 0

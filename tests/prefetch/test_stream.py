"""Unit tests for the stream prefetcher and its data-aware variant."""

from repro.prefetch import DataAwareStreamer, StreamPrefetcher
from repro.trace import DataType


def misses(pf, lines, kind=DataType.STRUCTURE, is_structure=None):
    """Feed a miss sequence; returns all candidate prefetch lines."""
    if is_structure is None:
        is_structure = kind is DataType.STRUCTURE
    out = []
    for line in lines:
        out.extend(pf.observe_miss(line, kind, is_structure, core=0))
    return out


class TestTraining:
    def test_needs_confirmation_before_prefetching(self):
        pf = StreamPrefetcher(confirm=2)
        assert misses(pf, [10]) == []
        assert misses(pf, [11]) == []  # first direction observation
        out = misses(pf, [12])  # confirmed ascending
        assert out and out[0] == 13

    def test_descending_stream(self):
        pf = StreamPrefetcher(confirm=2)
        out = misses(pf, [40, 39, 38])
        assert out and out[0] == 37
        assert all(a > b for a, b in zip(out, out[1:]))

    def test_direction_flip_restarts_confirmation(self):
        pf = StreamPrefetcher(confirm=2)
        assert misses(pf, [10, 11, 9]) == []  # flip resets confidence to 1
        out = misses(pf, [8])  # second descending observation confirms
        assert out and out[0] == 7

    def test_same_line_repeat_is_ignored(self):
        pf = StreamPrefetcher()
        assert misses(pf, [10, 10, 10]) == []


class TestIssue:
    def test_degree_limits_burst(self):
        pf = StreamPrefetcher(confirm=2, degree=4)
        out = misses(pf, [0, 1, 2])
        assert len(out) == 4
        assert out == [3, 4, 5, 6]

    def test_stream_advances_monotonically(self):
        pf = StreamPrefetcher(confirm=2, degree=4)
        misses(pf, [0, 1, 2])
        out = misses(pf, [3])
        assert out[0] == 7  # continues after the previous burst

    def test_distance_caps_runahead(self):
        pf = StreamPrefetcher(confirm=2, degree=16, distance=4)
        out = misses(pf, [0, 1, 2])
        assert max(out) <= 2 + 4

    def test_stops_at_page_boundary(self):
        pf = StreamPrefetcher(confirm=2, degree=16, distance=64, page_lines=64)
        out = misses(pf, [60, 61, 62])
        assert all(line < 64 for line in out)

    def test_hit_feedback_keeps_confirmed_stream_alive(self):
        pf = StreamPrefetcher(confirm=2, degree=2)
        misses(pf, [0, 1, 2])
        out = pf.observe_hit(3, DataType.STRUCTURE, True, 0)
        assert out  # the stream keeps issuing on prefetched-line hits

    def test_hit_does_not_train_unconfirmed(self):
        pf = StreamPrefetcher(confirm=2)
        pf.observe_miss(0, DataType.STRUCTURE, True, 0)
        assert pf.observe_hit(1, DataType.STRUCTURE, True, 0) == []


class TestTrackerPressure:
    def test_lru_tracker_eviction(self):
        pf = StreamPrefetcher(num_streams=2)
        misses(pf, [0 * 64, 1 * 64, 2 * 64])  # three pages, two trackers
        assert pf.live_trackers == 2
        assert pf.tracker_evictions == 1

    def test_random_pages_burn_trackers(self):
        """The paper's §V-B1 failure mode: scattered misses allocate
        trackers that never confirm."""
        pf = StreamPrefetcher(num_streams=4)
        out = misses(
            pf, [i * 64 for i in range(100)], kind=DataType.PROPERTY
        )
        assert out == []
        assert pf.tracker_allocations == 100


class TestDataAware:
    def test_ignores_non_structure(self):
        pf = DataAwareStreamer(confirm=2)
        out = misses(pf, [0, 1, 2, 3], kind=DataType.PROPERTY, is_structure=False)
        assert out == []
        assert pf.live_trackers == 0

    def test_trains_on_structure(self):
        pf = DataAwareStreamer(confirm=2)
        out = misses(pf, [0, 1, 2], kind=DataType.STRUCTURE, is_structure=True)
        assert out

    def test_interleaved_noise_does_not_evict_structure_trackers(self):
        pf = DataAwareStreamer(num_streams=1, confirm=2)
        pf.observe_miss(0, DataType.STRUCTURE, True, 0)
        # A flood of property misses in other pages changes nothing.
        for i in range(50):
            pf.observe_miss(1000 + i * 64, DataType.PROPERTY, False, 0)
        assert pf.live_trackers == 1
        pf.observe_miss(1, DataType.STRUCTURE, True, 0)
        out = pf.observe_miss(2, DataType.STRUCTURE, True, 0)
        assert out

    def test_reset_clears_state(self):
        pf = DataAwareStreamer()
        misses(pf, [0, 1, 2])
        pf.reset()
        assert pf.live_trackers == 0

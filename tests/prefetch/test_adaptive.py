"""Tests for feedback-directed (adaptive) streamers."""

from repro.prefetch import (
    AdaptiveDataAwareStreamer,
    AdaptiveStreamPrefetcher,
    FDPLevels,
)
from repro.prefetch.adaptive import FDP_LEVELS
from repro.trace import DataType


class TestController:
    def make(self, **kw):
        return AdaptiveStreamPrefetcher(
            thresholds=FDPLevels(interval=100), **kw
        )

    def test_starts_at_table_v_point(self):
        pf = self.make(start_level=2)
        assert (pf.distance, pf.degree) == FDP_LEVELS[2] == (16, 2)

    def test_promotes_on_high_accuracy(self):
        pf = self.make(start_level=2)
        pf.feedback(issued=200, useful=190, late=0)
        assert pf.level == 3
        assert (pf.distance, pf.degree) == FDP_LEVELS[3]

    def test_demotes_on_low_accuracy(self):
        pf = self.make(start_level=2)
        pf.feedback(issued=200, useful=20, late=0)
        assert pf.level == 1

    def test_promotes_on_lateness(self):
        """Accurate but late -> needs more distance -> promote ([53])."""
        pf = self.make(start_level=2)
        pf.feedback(issued=200, useful=120, late=80)
        assert pf.level == 3

    def test_no_change_below_interval(self):
        pf = self.make(start_level=2)
        pf.feedback(issued=50, useful=0, late=0)
        assert pf.level == 2
        assert pf.level_changes == 0

    def test_saturates_at_extremes(self):
        pf = self.make(start_level=0)
        pf.feedback(issued=200, useful=10, late=0)  # demote at floor
        assert pf.level == 0
        pf2 = self.make(start_level=len(FDP_LEVELS) - 1)
        pf2.feedback(issued=200, useful=200, late=0)  # promote at ceiling
        assert pf2.level == len(FDP_LEVELS) - 1

    def test_feedback_uses_deltas(self):
        pf = self.make(start_level=2)
        pf.feedback(issued=200, useful=190, late=0)  # promote (acc .95)
        # Next call: only 60 more issued -> below interval -> no change.
        pf.feedback(issued=260, useful=200, late=0)
        assert pf.level == 3

    def test_streaming_behaviour_inherited(self):
        pf = self.make(start_level=4)  # distance 64, degree 4
        out = []
        for line in (0, 1, 2):
            out.extend(pf.observe_miss(line, DataType.STRUCTURE, True, 0))
        assert out  # still a working streamer


class TestDataAwareVariant:
    def test_still_structure_only(self):
        pf = AdaptiveDataAwareStreamer()
        for line in (0, 1, 2, 3):
            assert pf.observe_miss(line, DataType.PROPERTY, False, 0) == []
        assert pf.live_trackers == 0

    def test_machine_integration(self):
        from repro.droplet.composite import PrefetchSetup
        from repro.droplet.mpp import MPPConfig
        from repro.graph import kronecker
        from repro.memory import GraphLayout
        from repro.system import Machine, SystemConfig
        from repro.workloads import get_workload

        g = kronecker(scale=13, edge_factor=8, seed=5, name="kron-s13")
        w = get_workload("PR")
        run = w.run(g, max_refs=30_000, skip_refs=w.recommended_skip(g))
        streamer = AdaptiveDataAwareStreamer(thresholds=FDPLevels(interval=64))
        setup = PrefetchSetup(
            name="droplet-fdp",
            l2_prefetcher=streamer,
            use_mpp=True,
            mpp_config=MPPConfig(),
            streamer_targets_l3_queue=True,
        )
        machine = Machine(
            SystemConfig.scaled_baseline(), run.layout, setup, "contrib"
        )
        res = machine.run(run.trace)
        assert res.cycles > 0
        # The controller actually engaged (accurate structure streams
        # promote aggressiveness).
        assert streamer.level_changes > 0 or streamer.level == 2

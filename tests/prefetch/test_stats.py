"""Unit tests for prefetch usefulness accounting."""

from repro.prefetch import NullPrefetcher, PrefetchLedger
from repro.trace import DataType


class TestLedger:
    def test_issue_and_timely_claim(self):
        ledger = PrefetchLedger()
        ledger.issue(10, DataType.STRUCTURE, ready=100.0, issuer="s")
        assert ledger.is_tracked(10)
        residual = ledger.claim_demand(10, now=150.0)
        assert residual == 0.0
        c = ledger.counters["s"]
        assert c.useful[DataType.STRUCTURE] == 1
        assert c.late[DataType.STRUCTURE] == 0
        assert not ledger.is_tracked(10)

    def test_late_claim_returns_residual(self):
        ledger = PrefetchLedger()
        ledger.issue(10, DataType.PROPERTY, ready=200.0, issuer="mpp")
        residual = ledger.claim_demand(10, now=150.0)
        assert residual == 50.0
        assert ledger.counters["mpp"].late[DataType.PROPERTY] == 1
        assert ledger.counters["mpp"].useful[DataType.PROPERTY] == 1

    def test_claim_untracked_is_zero(self):
        ledger = PrefetchLedger()
        assert ledger.claim_demand(99, now=0.0) == 0.0

    def test_eviction_claims(self):
        ledger = PrefetchLedger()
        ledger.issue(5, DataType.PROPERTY, ready=0.0, issuer="s")
        ledger.claim_eviction(5)
        assert ledger.counters["s"].evicted_unused[DataType.PROPERTY] == 1
        ledger.claim_eviction(5)  # idempotent on missing entries

    def test_accuracy(self):
        ledger = PrefetchLedger()
        for line in range(4):
            ledger.issue(line, DataType.STRUCTURE, 0.0, "s")
        ledger.claim_demand(0, 10.0)
        ledger.claim_demand(1, 10.0)
        ledger.claim_eviction(2)
        c = ledger.counters["s"]
        assert c.accuracy() == 0.5
        assert c.accuracy(DataType.STRUCTURE) == 0.5
        assert c.accuracy(DataType.PROPERTY) == 0.0

    def test_coverage(self):
        ledger = PrefetchLedger()
        ledger.issue(0, DataType.PROPERTY, 0.0, "s")
        ledger.claim_demand(0, 1.0)
        c = ledger.counters["s"]
        assert c.coverage(demand_misses=3) == 0.25

    def test_reissue_overwrites_entry(self):
        ledger = PrefetchLedger()
        ledger.issue(1, DataType.PROPERTY, 100.0, "a")
        ledger.issue(1, DataType.PROPERTY, 200.0, "b")
        assert ledger.ready_time(1) == 200.0
        ledger.claim_demand(1, 300.0)
        assert ledger.counters["b"].useful[DataType.PROPERTY] == 1
        assert ledger.counters["a"].useful[DataType.PROPERTY] == 0

    def test_drop(self):
        ledger = PrefetchLedger()
        ledger.drop("mpp")
        assert ledger.counters["mpp"].dropped == 1


class TestNullPrefetcher:
    def test_never_prefetches(self):
        pf = NullPrefetcher()
        assert pf.observe_miss(1, DataType.STRUCTURE, True, 0) == []
        assert pf.observe_hit(1, DataType.STRUCTURE, True, 0) == []

"""Unit tests for prefetch usefulness and pollution accounting."""

from repro.prefetch import NullPrefetcher, PrefetchLedger
from repro.prefetch.stats import PollutionTracker
from repro.trace import DataType


class TestLedger:
    def test_issue_and_timely_claim(self):
        ledger = PrefetchLedger()
        ledger.issue(10, DataType.STRUCTURE, ready=100.0, issuer="s")
        assert ledger.is_tracked(10)
        residual = ledger.claim_demand(10, now=150.0)
        assert residual == 0.0
        c = ledger.counters["s"]
        assert c.useful[DataType.STRUCTURE] == 1
        assert c.late[DataType.STRUCTURE] == 0
        assert not ledger.is_tracked(10)

    def test_late_claim_returns_residual(self):
        ledger = PrefetchLedger()
        ledger.issue(10, DataType.PROPERTY, ready=200.0, issuer="mpp")
        residual = ledger.claim_demand(10, now=150.0)
        assert residual == 50.0
        assert ledger.counters["mpp"].late[DataType.PROPERTY] == 1
        assert ledger.counters["mpp"].useful[DataType.PROPERTY] == 1

    def test_claim_untracked_is_zero(self):
        ledger = PrefetchLedger()
        assert ledger.claim_demand(99, now=0.0) == 0.0

    def test_eviction_claims(self):
        ledger = PrefetchLedger()
        ledger.issue(5, DataType.PROPERTY, ready=0.0, issuer="s")
        ledger.claim_eviction(5)
        assert ledger.counters["s"].evicted_unused[DataType.PROPERTY] == 1
        ledger.claim_eviction(5)  # idempotent on missing entries

    def test_accuracy(self):
        ledger = PrefetchLedger()
        for line in range(4):
            ledger.issue(line, DataType.STRUCTURE, 0.0, "s")
        ledger.claim_demand(0, 10.0)
        ledger.claim_demand(1, 10.0)
        ledger.claim_eviction(2)
        c = ledger.counters["s"]
        assert c.accuracy() == 0.5
        assert c.accuracy(DataType.STRUCTURE) == 0.5
        assert c.accuracy(DataType.PROPERTY) == 0.0

    def test_coverage(self):
        ledger = PrefetchLedger()
        ledger.issue(0, DataType.PROPERTY, 0.0, "s")
        ledger.claim_demand(0, 1.0)
        c = ledger.counters["s"]
        assert c.coverage(demand_misses=3) == 0.25

    def test_reissue_overwrites_entry(self):
        ledger = PrefetchLedger()
        ledger.issue(1, DataType.PROPERTY, 100.0, "a")
        ledger.issue(1, DataType.PROPERTY, 200.0, "b")
        assert ledger.ready_time(1) == 200.0
        ledger.claim_demand(1, 300.0)
        assert ledger.counters["b"].useful[DataType.PROPERTY] == 1
        assert ledger.counters["a"].useful[DataType.PROPERTY] == 0

    def test_drop(self):
        ledger = PrefetchLedger()
        ledger.drop("mpp")
        assert ledger.counters["mpp"].dropped == 1


class TestPollutionTracker:
    def _tracker(self, capacities=None):
        ledger = PrefetchLedger()
        tracker = ledger.enable_pollution_tracking(capacities or {"L3": 4})
        return ledger, tracker

    def test_enable_is_idempotent(self):
        ledger, tracker = self._tracker()
        assert ledger.enable_pollution_tracking({"L2": 99}) is tracker
        assert tracker.tracked_levels() == ["L3"]

    def test_eviction_then_miss_counts_against_issuer(self):
        ledger, tracker = self._tracker()
        tracker.on_prefetch_eviction("L3", 7, "stream")
        assert tracker.on_demand_miss("L3", 7, int(DataType.PROPERTY))
        assert ledger.counters["stream"].polluting[DataType.PROPERTY] == 1
        assert ledger.counters["stream"].total_polluting == 1
        assert ledger.total_polluting() == 1
        assert ledger.total_polluting(DataType.STRUCTURE) == 0
        # Claimed: a second miss on the same line is not re-counted.
        assert not tracker.on_demand_miss("L3", 7, int(DataType.PROPERTY))

    def test_fill_clears_shadow_entry(self):
        ledger, tracker = self._tracker()
        tracker.on_prefetch_eviction("L3", 7, "stream")
        tracker.on_fill("L3", 7)  # line came back before any demand miss
        assert not tracker.on_demand_miss("L3", 7, int(DataType.STRUCTURE))
        assert ledger.total_polluting() == 0

    def test_shadow_set_is_bounded(self):
        ledger, tracker = self._tracker({"L3": 2})
        for line in (1, 2, 3):
            tracker.on_prefetch_eviction("L3", line, "s")
        # Oldest entry (line 1) fell off the bounded shadow set.
        assert not tracker.on_demand_miss("L3", 1, int(DataType.STRUCTURE))
        assert tracker.on_demand_miss("L3", 2, int(DataType.STRUCTURE))
        assert tracker.on_demand_miss("L3", 3, int(DataType.STRUCTURE))

    def test_untracked_level_is_a_noop(self):
        ledger, tracker = self._tracker({"L3": 4})
        tracker.on_prefetch_eviction("L1", 5, "s")
        assert not tracker.on_demand_miss("L1", 5, int(DataType.STRUCTURE))
        assert ledger.total_polluting() == 0

    def test_unknown_issuer_bucket(self):
        ledger, tracker = self._tracker()
        tracker.on_prefetch_eviction("L3", 9, None)
        assert tracker.on_demand_miss("L3", 9, int(DataType.INTERMEDIATE))
        assert ledger.counters["unknown"].polluting[DataType.INTERMEDIATE] == 1

    def test_as_dict_shape(self):
        ledger, tracker = self._tracker({"L3": 4})
        tracker.on_prefetch_eviction("L3", 1, "s")
        tracker.on_demand_miss("L3", 1, int(DataType.PROPERTY))
        block = tracker.as_dict()
        l3 = block["levels"]["L3"]
        assert l3["prefetch_evictions"] == 1
        assert l3["pollution_misses"] == 1
        assert l3["shadow_capacity"] == 4
        assert l3["shadow_occupancy"] == 0
        assert block["by_issuer"]["s"]["property"] == 1

    def test_polluting_gauges_registered(self):
        from repro.telemetry import MetricRegistry

        ledger, tracker = self._tracker()
        registry = MetricRegistry()
        ledger.register_telemetry(registry)
        tracker.on_prefetch_eviction("L3", 1, "s")
        tracker.on_demand_miss("L3", 1, int(DataType.PROPERTY))
        values = registry.snapshot()
        assert values["prefetch.polluting"] == 1
        assert values["prefetch.polluting.property"] == 1
        assert values["prefetch.polluting.structure"] == 0
        assert values["prefetch.s.polluting"] == 1


class TestNullPrefetcher:
    def test_never_prefetches(self):
        pf = NullPrefetcher()
        assert pf.observe_miss(1, DataType.STRUCTURE, True, 0) == []
        assert pf.observe_hit(1, DataType.STRUCTURE, True, 0) == []

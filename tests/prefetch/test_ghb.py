"""Unit tests for the GHB G/DC prefetcher."""

from repro.prefetch import GHBPrefetcher
from repro.trace import DataType


def misses(pf, lines):
    out = []
    for line in lines:
        out.extend(pf.observe_miss(line, DataType.PROPERTY, False, 0))
    return out


class TestGHB:
    def test_constant_stride_learned(self):
        pf = GHBPrefetcher(degree=2)
        # Deltas: all +2. The pair (2, 2) repeats, so predictions replay +2.
        out = misses(pf, [0, 2, 4, 6, 8])
        assert out
        assert all((line - 8) % 2 == 0 or line > 8 for line in out[-2:])

    def test_repeating_delta_pattern(self):
        pf = GHBPrefetcher(degree=3)
        # Pattern +1, +3 repeating: 0 1 4 5 8 9 12 ...
        seq = [0, 1, 4, 5, 8, 9, 12]
        out = misses(pf, seq)
        # After the second (1,3) pair occurrence the follower deltas replay.
        assert 13 in out or 16 in out

    def test_random_stream_learns_nothing(self):
        import random

        rng = random.Random(9)
        pf = GHBPrefetcher()
        out = misses(pf, [rng.randrange(1 << 20) for _ in range(50)])
        assert out == []  # no delta pair repeats

    def test_no_prediction_before_history(self):
        pf = GHBPrefetcher()
        assert misses(pf, [10, 20]) == []

    def test_negative_addresses_not_emitted(self):
        pf = GHBPrefetcher(degree=4)
        out = misses(pf, [100, 50, 0, 100, 50, 0])
        assert all(line > 0 for line in out)

    def test_index_table_bounded(self):
        pf = GHBPrefetcher(index_size=4)
        misses(pf, list(range(0, 100, 7)) + list(range(0, 100, 11)))
        assert len(pf._index) <= 4

    def test_buffer_wraps_without_error(self):
        pf = GHBPrefetcher(buffer_size=8)
        misses(pf, list(range(0, 64, 2)))
        assert pf._count > 8  # wrapped

    def test_reset(self):
        pf = GHBPrefetcher()
        misses(pf, [0, 2, 4, 6])
        pf.reset()
        assert misses(pf, [0, 2]) == []

"""Unit tests for the IMP indirect prefetcher (related-work baseline)."""

import pytest

from repro.prefetch.imp import IMPPrefetcher
from repro.trace import DataType


def train(imp, base, values, shift=2):
    """Feed index values then the matching indirect misses."""
    imp.observe_index_values(values)
    for v in values:
        line = (base + (v << shift)) // 64
        imp.observe_miss(line, DataType.PROPERTY, False, 0)


class TestTraining:
    def test_learns_shift2_pattern(self):
        imp = IMPPrefetcher(confirm=3)
        train(imp, base=1 << 20, values=[100, 200, 300, 400])
        assert imp.active_patterns >= 1
        best = imp.best_pattern()
        assert best.shift == 2
        assert abs(best.base - (1 << 20)) < 64

    def test_learns_shift3_pattern(self):
        imp = IMPPrefetcher(confirm=3)
        train(imp, base=1 << 21, values=[64, 1024, 4096, 128, 555], shift=3)
        best = imp.best_pattern()
        assert best is not None and best.shift == 3

    def test_needs_confirmation(self):
        imp = IMPPrefetcher(confirm=4)
        train(imp, base=1 << 20, values=[100, 200])  # only 2 pairs
        assert imp.active_patterns == 0

    def test_random_misses_learn_nothing_stable(self):
        import random

        rng = random.Random(1)
        imp = IMPPrefetcher(confirm=4)
        imp.observe_index_values([rng.randrange(1 << 16) for _ in range(16)])
        for _ in range(50):
            imp.observe_miss(rng.randrange(1 << 22), DataType.PROPERTY, False, 0)
        # Coincidental patterns may appear but accumulate few hits.
        best = imp.best_pattern()
        assert best is None or best.hits < 5

    def test_structure_misses_not_correlated(self):
        imp = IMPPrefetcher()
        imp.observe_index_values([1, 2, 3])
        assert imp.observe_miss(100, DataType.STRUCTURE, True, 0) == []
        assert imp.active_patterns == 0


class TestChasing:
    def test_chases_through_learned_pattern(self):
        imp = IMPPrefetcher(confirm=3)
        base = 1 << 20
        # Line-aligned value spacing (v*4 multiple of 64) makes the
        # line-granular base estimate exact.
        train(imp, base=base, values=[16, 32, 48, 64])
        out = imp.observe_index_values([512, 640])
        expected = {(base + (v << 2)) // 64 for v in (512, 640)}
        assert expected <= set(out)

    def test_no_chase_before_training(self):
        imp = IMPPrefetcher()
        assert imp.observe_index_values([1, 2, 3]) == []

    def test_chase_capped_by_lookahead(self):
        imp = IMPPrefetcher(confirm=3, lookahead=4)
        train(imp, base=1 << 20, values=[10, 20, 30, 40])
        out = imp.observe_index_values(list(range(100, 200)))
        assert len(out) <= 4

    def test_reset(self):
        imp = IMPPrefetcher(confirm=3)
        train(imp, base=1 << 20, values=[10, 20, 30, 40])
        imp.reset()
        assert imp.active_patterns == 0
        assert imp.observe_index_values([5]) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            IMPPrefetcher(confirm=0)


class TestMachineIntegration:
    def test_imp_setup_requires_layout(self):
        from repro.system import Machine, SystemConfig

        with pytest.raises(ValueError):
            Machine(SystemConfig.scaled_baseline(), layout=None, setup="imp")

    def test_imp_between_nothing_and_droplet_on_gather(self):
        from repro.graph import kronecker
        from repro.system import compare_setups
        from repro.workloads import get_workload

        g = kronecker(scale=15, edge_factor=8, seed=5, name="kron-s15")
        w = get_workload("PR")
        run = w.run(g, max_refs=60_000, skip_refs=w.recommended_skip(g))
        results = compare_setups(run, ("none", "imp", "droplet"))
        base = results["none"]
        assert results["imp"].ledger.counters["imp"].total_issued > 0
        # The paper's qualitative claim: DROPLET beats the IMP design.
        assert results["droplet"].speedup_vs(base) > results["imp"].speedup_vs(base)

"""Tests for result summaries and JSON reporting."""

import json

import pytest

from repro.reporting import (
    compare_summaries,
    format_versions,
    load_results,
    save_results,
    summarize,
    summarize_sweep,
)
from repro.system import Machine, SystemConfig
from repro.trace import gather_trace


@pytest.fixture(scope="module")
def result():
    return Machine(SystemConfig.scaled_baseline()).run(
        gather_trace(3000, property_region=1 << 20)
    )


class TestSummarize:
    def test_core_fields(self, result):
        s = summarize(result)
        assert s["trace"] == "gather"
        assert s["setup"] == "none"
        assert s["cycles"] == result.cycles
        assert s["ipc"] == pytest.approx(result.ipc)
        assert 0 <= s["l2_hit_rate"] <= 1

    def test_per_type_fields(self, result):
        s = summarize(result)
        for key in ("structure", "property", "intermediate"):
            assert "llc_mpki_" + key in s
            assert "offchip_frac_" + key in s

    def test_json_safe(self, result):
        json.dumps(summarize(result))  # must not raise


class TestSaveLoad:
    def test_roundtrip(self, result, tmp_path):
        path = tmp_path / "results.json"
        save_results([summarize(result)], path)
        loaded = load_results(path)
        assert len(loaded) == 1
        assert loaded[0]["trace"] == "gather"

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else", "results": []}))
        with pytest.raises(ValueError):
            load_results(path)


class TestSweepReportSchema:
    """Satellite: sweep reports are self-describing (seeds + formats)."""

    @staticmethod
    def make_report(**point_kwargs):
        from repro.runtime.points import PointResult, SweepPoint
        from repro.runtime.sweep import SweepReport

        point = SweepPoint("PR", "kron", max_refs=100, scale_shift=-6, **point_kwargs)
        return SweepReport(points=[PointResult(point=point, summary={"cycles": 1})])

    def test_points_record_full_trace_identity(self):
        payload = summarize_sweep(self.make_report())
        (entry,) = payload["points"]
        assert entry["max_refs"] == 100
        assert entry["scale_shift"] == -6
        # seed=None backfills to the dataset's paper-default seed so the
        # report alone suffices to regenerate the trace.
        assert entry["seed"] == 7

    def test_explicit_seed_passes_through(self):
        (entry,) = summarize_sweep(self.make_report(seed=42))["points"]
        assert entry["seed"] == 42

    def test_unknown_dataset_leaves_seed_unresolved(self):
        from repro.runtime.points import PointResult, SweepPoint
        from repro.runtime.sweep import SweepReport

        point = SweepPoint("PR", "mystery", max_refs=100)
        report = SweepReport(points=[PointResult(point=point, summary={})])
        (entry,) = summarize_sweep(report)["points"]
        assert entry["seed"] is None

    def test_formats_block(self):
        payload = summarize_sweep(self.make_report())
        assert payload["formats"] == format_versions()
        formats = payload["formats"]
        assert formats["sweep"] == "repro-sweep-v2"
        assert formats["results"] == "repro-results-v1"
        assert formats["telemetry"] == "repro-telemetry-v1"
        from repro.runtime import CACHE_FORMAT_VERSION
        from repro.trace import TRACE_FORMAT_VERSION

        assert formats["trace"] == TRACE_FORMAT_VERSION
        assert formats["trace_cache"] == CACHE_FORMAT_VERSION

    def test_metrics_carry_execution_mode(self):
        payload = summarize_sweep(self.make_report())
        assert payload["metrics"]["mode"] == "serial"
        json.dumps(payload)  # whole report stays JSON-safe


class TestCompare:
    def test_ratio_computation(self, result):
        s = summarize(result)
        ratios = compare_summaries(s, s)
        assert ratios["cycles"] == pytest.approx(1.0)
        assert ratios["ipc"] == pytest.approx(1.0)

    def test_detects_improvement(self, result):
        from repro.memory import GraphLayout  # noqa: F401 (doc import guard)

        before = summarize(result)
        after = dict(before)
        after["cycles"] = before["cycles"] / 2
        ratios = compare_summaries(before, after)
        assert ratios["cycles"] == pytest.approx(0.5)

    def test_different_traces_rejected(self, result):
        a = summarize(result)
        b = dict(a)
        b["trace"] = "other"
        with pytest.raises(ValueError):
            compare_summaries(a, b)

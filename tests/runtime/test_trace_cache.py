"""On-disk trace cache: keying, round-trips, invalidation, accounting."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.reporting import summarize
from repro.runtime import TraceCache, TraceSpec, default_cache_root, trace_key
from repro.runtime.trace_cache import CACHE_ENV_VAR
from repro.system.runner import simulate

#: Small but non-trivial trace: fast to generate, exercises BFS's
#: dynamically allocated frontier regions as well as static layouts.
SPEC = TraceSpec(workload="PR", dataset="kron", max_refs=3000, scale_shift=-6)
BFS_SPEC = TraceSpec(workload="BFS", dataset="kron", max_refs=3000, scale_shift=-6)


@pytest.fixture
def cache(tmp_path) -> TraceCache:
    return TraceCache(tmp_path / "traces")


class TestTraceKey:
    def test_stable_across_instances(self):
        assert trace_key(SPEC) == trace_key(
            TraceSpec(workload="pr", dataset="kron", max_refs=3000, scale_shift=-6)
        )

    @pytest.mark.parametrize(
        "other",
        [
            TraceSpec("PR", "kron", max_refs=3001, scale_shift=-6),
            TraceSpec("PR", "kron", max_refs=3000, scale_shift=-5),
            TraceSpec("PR", "kron", max_refs=3000, scale_shift=-6, seed=99),
            TraceSpec("BFS", "kron", max_refs=3000, scale_shift=-6),
            TraceSpec("PR", "urand", max_refs=3000, scale_shift=-6),
        ],
    )
    def test_sensitive_to_every_identity_field(self, other):
        assert trace_key(other) != trace_key(SPEC)

    def test_weightedness_is_part_of_the_key(self):
        # SSSP traces a weighted graph; the key must not collide with an
        # unweighted workload's trace of the same dataset.
        sssp = TraceSpec("SSSP", "kron", max_refs=3000, scale_shift=-6)
        assert sssp.weighted and not SPEC.weighted
        assert trace_key(sssp) != trace_key(SPEC)


class TestDefaultRoot:
    def test_defaults_under_home_cache(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        root = default_cache_root()
        assert root is not None
        assert root.parts[-3:] == (".cache", "repro", "traces")

    def test_env_var_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "custom"))
        assert default_cache_root() == tmp_path / "custom"

    @pytest.mark.parametrize("value", ["", "0", "off", "none", "OFF"])
    def test_env_var_disables(self, monkeypatch, value):
        monkeypatch.setenv(CACHE_ENV_VAR, value)
        assert default_cache_root() is None
        cache = TraceCache()
        assert not cache.enabled


class TestRoundTrip:
    def test_miss_then_hit_with_accounting(self, cache):
        assert cache.lookup(SPEC) is None
        assert (cache.hits, cache.misses) == (0, 1)
        run, was_hit = cache.get_or_trace(SPEC)
        assert not was_hit
        assert run.trace is not None
        cached, was_hit = cache.get_or_trace(SPEC)
        assert was_hit
        assert (cache.hits, cache.misses) == (1, 2)
        assert cached.workload == run.workload and cached.dataset == run.dataset

    @pytest.mark.parametrize("spec", [SPEC, BFS_SPEC], ids=["PR", "BFS"])
    def test_cached_run_simulates_bit_identically(self, cache, spec):
        fresh = spec.trace()
        cache.store(spec, fresh)
        cached = cache.lookup(spec)
        assert cached is not None
        # The trace arrays round-trip exactly...
        assert np.array_equal(cached.trace.addr, fresh.trace.addr)
        # ... the layout reconstructs region-exactly (BFS allocates its
        # frontier queues *during* tracing; those must replay too) ...
        fresh_regions = {
            r.name: (r.base, r.size, r.kind, r.element_size)
            for r in fresh.layout.space.regions.values()
        }
        cached_regions = {
            r.name: (r.base, r.size, r.kind, r.element_size)
            for r in cached.layout.space.regions.values()
        }
        assert cached_regions == fresh_regions
        # ... so simulation of the cached run is bit-identical.
        assert summarize(simulate(cached)) == summarize(simulate(fresh))

    def test_algorithm_output_not_retained(self, cache):
        run, _ = cache.get_or_trace(SPEC)
        cached = cache.lookup(SPEC)
        # Only the simulation-relevant state round-trips; the algorithm's
        # output values are deliberately not persisted.
        assert cached.result is None
        assert cached.completed == run.completed


class TestInvalidation:
    def _warm(self, cache, spec=SPEC):
        cache.get_or_trace(spec)
        cache.hits = cache.misses = 0
        return cache._paths(trace_key(spec))

    def test_version_skew_drops_entry(self, cache):
        npz_path, meta_path = self._warm(cache)
        meta = json.loads(meta_path.read_text())
        meta["cache_format"] += 1
        meta_path.write_text(json.dumps(meta))
        assert cache.lookup(SPEC) is None
        assert cache.misses == 1
        assert not npz_path.exists() and not meta_path.exists()

    def test_corrupt_archive_drops_entry(self, cache):
        npz_path, meta_path = self._warm(cache)
        npz_path.write_bytes(npz_path.read_bytes()[: npz_path.stat().st_size // 2])
        assert cache.lookup(SPEC) is None
        assert not npz_path.exists() and not meta_path.exists()

    def test_layout_fingerprint_mismatch_drops_entry(self, cache):
        npz_path, meta_path = self._warm(cache)
        meta = json.loads(meta_path.read_text())
        meta["regions"][0][1] += 64  # shift one recorded region base
        meta_path.write_text(json.dumps(meta))
        assert cache.lookup(SPEC) is None
        assert not meta_path.exists()

    def test_missing_sidecar_is_a_plain_miss(self, cache):
        npz_path, meta_path = self._warm(cache)
        meta_path.unlink()
        assert cache.lookup(SPEC) is None
        assert cache.misses == 1

    def test_clear_removes_entries(self, cache):
        self._warm(cache)
        assert cache.clear() == 2  # .npz + .json
        assert cache.lookup(SPEC) is None


class TestIntegrity:
    """Satellite: checksums, quarantine and the per-entry advisory lock."""

    def _warm(self, cache, spec=SPEC):
        cache.get_or_trace(spec)
        cache.hits = cache.misses = 0
        return cache._paths(trace_key(spec))

    def test_sidecar_records_npz_checksum(self, cache):
        import hashlib

        npz_path, meta_path = self._warm(cache)
        meta = json.loads(meta_path.read_text())
        assert meta["npz_sha256"] == hashlib.sha256(
            npz_path.read_bytes()
        ).hexdigest()

    def test_truncated_archive_is_quarantined(self, cache):
        npz_path, meta_path = self._warm(cache)
        npz_path.write_bytes(npz_path.read_bytes()[: npz_path.stat().st_size // 2])
        assert cache.lookup(SPEC) is None
        assert cache.quarantined == 1
        assert (cache.quarantine_dir / npz_path.name).exists()
        assert (cache.quarantine_dir / meta_path.name).exists()

    def test_checksum_mismatch_is_quarantined(self, cache):
        npz_path, meta_path = self._warm(cache)
        # Flip one payload byte: still a loadable npz, but not the bytes
        # the sidecar vouches for.
        data = bytearray(npz_path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        npz_path.write_bytes(bytes(data))
        assert cache.lookup(SPEC) is None
        assert cache.quarantined == 1

    def test_malformed_sidecar_is_quarantined(self, cache):
        _npz_path, meta_path = self._warm(cache)
        meta_path.write_text("{not json")
        assert cache.lookup(SPEC) is None
        assert cache.quarantined == 1

    def test_quarantined_entry_regenerates(self, cache):
        npz_path, _meta_path = self._warm(cache)
        fresh = cache.lookup(SPEC)  # keep a clean reference loaded first
        npz_path.write_bytes(b"garbage")
        cache.hits = cache.misses = 0
        run, was_hit = cache.get_or_trace(SPEC)
        assert not was_hit
        assert np.array_equal(run.trace.addr, fresh.trace.addr)
        # The regenerated entry is immediately loadable again.
        assert cache.lookup(SPEC) is not None

    def test_concurrent_cold_misses_generate_once(self, cache, monkeypatch):
        import threading

        from repro.runtime.points import TraceSpec as SpecClass

        traced = []
        original = SpecClass.trace

        def counting_trace(self, graph=None):
            traced.append(trace_key(self))
            return original(self, graph=graph)

        monkeypatch.setattr(SpecClass, "trace", counting_trace)
        results = []
        threads = [
            threading.Thread(
                target=lambda: results.append(cache.get_or_trace(SPEC))
            )
            for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # The advisory lock serialized the generate-and-store: one thread
        # traced, the other found the stored entry on its post-lock
        # re-check.
        assert len(traced) == 1
        assert len(results) == 2
        assert sorted(hit for _run, hit in results) == [False, True]

    def test_quarantine_counter_in_repr(self, cache):
        assert "quarantined=0" in repr(cache)


class TestDisabled:
    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = TraceCache(tmp_path / "traces", enabled=False)
        run, was_hit = cache.get_or_trace(SPEC)
        assert not was_hit and run is not None
        assert not (tmp_path / "traces").exists()
        assert cache.lookup(SPEC) is None
        assert cache.clear() == 0

"""Run-status reconstruction and cross-run trend tracking.

The store seam of the observability PR: ``load_run_status`` must rebuild
a sweep's per-point state purely from its on-disk ledger + span sidecar,
and a *finished* traced run's counters must match the sweep report's
resilience counters exactly.  Trend tests exercise the metrics-store
scanner and direction-aware regression flags on synthetic snapshots.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.runtime import (
    FaultPlan,
    RetryPolicy,
    RunLedger,
    RunStatusBuilder,
    SweepPoint,
    SweepRunner,
    TraceCache,
    load_run_status,
    status_paths,
    status_table_rows,
    watch,
)
from repro.telemetry.tail import JsonlTailer
from repro.telemetry import spans
from repro.telemetry.trend import (
    flag_regressions,
    scan_store,
    trend_report,
    trend_series,
    trend_table_rows,
)

MAX_REFS = 3000
SCALE_SHIFT = -6


def make_points(workloads=("PR", "BFS"), setups=("none", "droplet")):
    return [
        SweepPoint(
            workload=w,
            dataset="kron",
            setup=s,
            max_refs=MAX_REFS,
            scale_shift=SCALE_SHIFT,
        )
        for w in workloads
        for s in setups
    ]


def traced_runner(tmp_path, run_id, **kwargs):
    """Serial runner journaling to a ledger + span sidecar under tmp_path."""
    kwargs.setdefault("return_full", False)
    ledger = RunLedger(run_id, root=tmp_path / "runs")
    tracer = spans.SpanRecorder(sidecar=spans.sidecar_path(ledger.path))
    runner = SweepRunner(
        trace_cache=TraceCache(tmp_path / "traces"),
        ledger=ledger,
        tracer=tracer,
        **kwargs,
    )
    return runner, ledger, tracer


class TestRunStatus:
    def test_finished_run_counters_match_report_exactly(self, tmp_path):
        runner, ledger, _ = traced_runner(
            tmp_path,
            "faulty",
            # trip_dir makes the fault one-shot, so the retry recovers it.
            faults=FaultPlan(error=(1,), trip_dir=str(tmp_path / "trips")),
            retry=RetryPolicy(max_attempts=3, backoff=0.01),
        )
        report = runner.run(make_points(workloads=("PR",)))
        assert report.ok()
        status = load_run_status("faulty", root=tmp_path / "runs")
        assert status.found and status.finished
        assert status.total == 2
        assert status.count("done") == 2
        metrics = report.metrics.as_dict()
        for key in (
            "retries",
            "timeouts",
            "recovered_workers",
            "quarantined_entries",
            "restored_points",
            "errors",
        ):
            assert status.counters[key] == metrics[key], key
        assert status.counters["retries"] == 1  # the injected fault
        assert status.metrics == metrics  # F record carried verbatim

    def test_point_states_and_annotations(self, tmp_path):
        runner, _, _ = traced_runner(
            tmp_path,
            "run-a",
            faults=FaultPlan.from_spec("error@0"),
            retry=RetryPolicy(max_attempts=1),
        )
        report = runner.run(make_points(workloads=("PR",)))
        assert not report.ok()
        status = load_run_status("run-a", root=tmp_path / "runs")
        failed, good = status.points
        assert failed.state == "failed"
        assert failed.error_kind == "FaultError"
        assert good.state == "done"
        assert good.cache_hit is not None
        assert good.tier in ("vector", "degraded", "scalar")
        assert good.wall_time and good.wall_time > 0
        rows = status_table_rows(status)
        assert [r["state"] for r in rows] == ["failed", "done"]
        assert rows[1]["cache"] in ("hit", "miss")

    def test_status_as_dict_is_json_safe(self, tmp_path):
        runner, _, _ = traced_runner(tmp_path, "run-b")
        runner.run(make_points(workloads=("PR",), setups=("none",)))
        status = load_run_status("run-b", root=tmp_path / "runs")
        payload = json.loads(json.dumps(status.as_dict()))
        assert payload["finished"] is True
        assert payload["states"]["done"] == 1
        assert payload["total"] == 1
        assert payload["eta_s"] == 0.0

    def test_live_run_shows_unfinished_point_as_running(self, tmp_path):
        # Forge the sidecar a live sweep would have written: the run meta,
        # one settled point and one eager begin without an end.
        ledger_path = tmp_path / "runs" / "live.jsonl"
        rec = spans.SpanRecorder(sidecar=spans.sidecar_path(ledger_path))
        rec.meta(
            "sweep.run",
            run_id="live",
            total=2,
            labels=["PR/kron/none", "PR/kron/droplet"],
            workers=2,
            mode="parallel",
        )
        rec.event(
            "point.final",
            index=0,
            label="PR/kron/none",
            ok=True,
            attempts=1,
            cache_hit=False,
            tier="vector",
            windows_degraded=0,
            wall_time=1.5,
            quarantined=0,
            restored=False,
        )
        rec.start("point", index=1, label="PR/kron/droplet", attempt=2)
        rec.event("point.retry", index=1)
        status = load_run_status("live", root=tmp_path / "runs")
        assert status.found and not status.finished
        assert status.mode == "parallel" and status.workers == 2
        done, running = status.points
        assert done.state == "done"
        assert running.state == "running" and running.attempts == 2
        assert status.counters["retries"] == 1
        assert status.eta_seconds() == pytest.approx(1.5 / 2)

    def test_retried_point_without_open_span_shows_retrying(self, tmp_path):
        ledger_path = tmp_path / "runs" / "retry.jsonl"
        rec = spans.SpanRecorder(sidecar=spans.sidecar_path(ledger_path))
        rec.meta("sweep.run", total=1, labels=["PR/kron/none"], workers=1)
        rec.event("point.retry", index=0)
        status = load_run_status("retry", root=tmp_path / "runs")
        (point,) = status.points
        assert point.state == "retrying"
        assert point.attempts == 2

    def test_ledger_only_historical_run(self, tmp_path):
        # A run journaled before span tracing existed (or --no-spans):
        # the ledger alone yields completion, tiers and durations.
        runner, ledger, _ = traced_runner(tmp_path, "old")
        runner.run(make_points(workloads=("PR",)))
        spans.sidecar_path(ledger.path).unlink()
        status = load_run_status("old", root=tmp_path / "runs")
        assert status.found and status.finished
        assert status.count("done") == 2
        assert all(p.wall_time for p in status.points)
        assert all(p.tier for p in status.points)

    def test_unknown_run_not_found(self, tmp_path):
        status = load_run_status("ghost", root=tmp_path / "runs")
        assert not status.found
        assert status.total == 0


class TestWatchIncremental:
    def test_incremental_folds_match_full_reload_at_every_step(self, tmp_path):
        """Replaying real artifacts record-by-record, the incremental
        builder's snapshot equals a full reload after every chunk —
        the parity `--watch` (and the service pollers) rely on."""
        runner, ledger, tracer = traced_runner(
            tmp_path,
            "parity",
            faults=FaultPlan(error=(1,), trip_dir=str(tmp_path / "trips")),
            retry=RetryPolicy(max_attempts=3, backoff=0.01),
        )
        runner.run(make_points(workloads=("PR",)))
        ledger_lines = ledger.path.read_text().splitlines(keepends=True)
        sidecar_lines = tracer.sidecar.read_text().splitlines(keepends=True)

        shadow = tmp_path / "shadow"
        shadow.mkdir()
        shadow_ledger, shadow_sidecar = status_paths("parity", shadow)
        builder = RunStatusBuilder("parity", shadow_ledger, shadow_sidecar)
        ledger_tail = JsonlTailer(shadow_ledger)
        sidecar_tail = JsonlTailer(shadow_sidecar)

        def drip(path, lines):
            with open(path, "a", encoding="utf-8") as fh:
                fh.write("".join(lines))

        # Interleave ledger and sidecar appends a few lines at a time.
        steps = []
        for i in range(0, len(ledger_lines), 2):
            steps.append((shadow_ledger, ledger_lines[i : i + 2]))
        for i in range(0, len(sidecar_lines), 3):
            steps.append((shadow_sidecar, sidecar_lines[i : i + 3]))
        for path, lines in steps:
            drip(path, lines)
            for record in ledger_tail.poll():
                builder.fold_ledger(record)
            for record in sidecar_tail.poll():
                builder.fold_span(record)
            incremental = builder.snapshot().as_dict()
            full = load_run_status("parity", root=shadow).as_dict()
            # ETA depends on point completion only; dicts match exactly.
            assert incremental == full
        assert builder.snapshot().finished

    def test_watch_tails_a_live_run_to_completion(self, tmp_path):
        import threading

        runner, _, _ = traced_runner(tmp_path, "livewatch")
        worker = threading.Thread(
            target=runner.run,
            args=(make_points(workloads=("PR",), setups=("none",)),),
        )
        worker.start()
        try:
            seen = []
            status = watch(
                "livewatch",
                root=tmp_path / "runs",
                poll=0.05,
                render=seen.append,
                max_polls=600,
            )
        finally:
            worker.join()
        assert status.finished
        assert status.count("done") == 1
        assert len(seen) >= 1 and seen[-1].finished
        # The final incremental status equals a full reload.
        assert status.as_dict() == load_run_status(
            "livewatch", root=tmp_path / "runs"
        ).as_dict()

    def test_watch_max_polls_bounds_an_unfinished_run(self, tmp_path):
        ledger_path = tmp_path / "runs" / "stuck.jsonl"
        rec = spans.SpanRecorder(sidecar=spans.sidecar_path(ledger_path))
        rec.meta("sweep.run", total=1, labels=["PR/kron/none"], workers=1)
        rec.start("point", index=0, label="PR/kron/none", attempt=1)
        status = watch(
            "stuck", root=tmp_path / "runs", poll=0.01, max_polls=2
        )
        assert not status.finished
        assert status.points[0].state == "running"


class TestTrend:
    @staticmethod
    def _write(path, payload, mtime):
        path.write_text(json.dumps(payload))
        import os

        os.utime(path, (mtime, mtime))

    @staticmethod
    def _sweep_payload(cycles, ipc=0.5):
        return {
            "format": "repro-sweep-v2",
            "points": [
                {
                    "ok": True,
                    "label": "PR/kron/droplet",
                    "summary": {"cycles": cycles, "ipc": ipc},
                }
            ],
        }

    @staticmethod
    def _bench_payload(speedup):
        return {
            "schema": "repro-replay-bench-v2",
            "cells": {"PR": {"droplet": {"speedup": speedup}}},
        }

    @pytest.fixture()
    def store(self, tmp_path):
        now = time.time()
        self._write(tmp_path / "sweep-1.json", self._sweep_payload(100.0), now - 40)
        self._write(tmp_path / "sweep-2.json", self._sweep_payload(101.0), now - 30)
        self._write(tmp_path / "sweep-3.json", self._sweep_payload(120.0), now - 20)
        self._write(tmp_path / "bench-1.json", self._bench_payload(2.0), now - 15)
        self._write(tmp_path / "bench-2.json", self._bench_payload(1.5), now - 10)
        (tmp_path / "noise.json").write_text('{"format": "other"}')
        (tmp_path / "broken.json").write_text("{not json")
        return tmp_path

    def test_scan_classifies_and_orders_by_mtime(self, store):
        snapshots = scan_store(store)
        assert [s.kind for s in snapshots] == [
            "sweep", "sweep", "sweep", "bench", "bench",
        ]
        assert snapshots[0].label == "sweep-1.json"

    def test_scan_missing_store_is_empty(self, tmp_path):
        assert scan_store(tmp_path / "nope") == []

    def test_series_track_each_metric(self, store):
        series = trend_series(scan_store(store))
        assert series["PR/kron/droplet:cycles"] == [
            ("sweep-1.json", 100.0),
            ("sweep-2.json", 101.0),
            ("sweep-3.json", 120.0),
        ]
        assert series["bench:PR/droplet:speedup"] == [
            ("bench-1.json", 2.0),
            ("bench-2.json", 1.5),
        ]

    def test_flags_are_direction_aware(self, store):
        series = trend_series(scan_store(store))
        flags = flag_regressions(series, threshold=0.05)
        flagged = {f.series for f in flags}
        # cycles rose 100.5 -> 120 (larger-is-worse): flagged.
        assert "PR/kron/droplet:cycles" in flagged
        # speedup fell 2.0 -> 1.5 (smaller-is-worse): flagged.
        assert "bench:PR/droplet:speedup" in flagged
        # ipc held flat: not flagged.
        assert "PR/kron/droplet:ipc" not in flagged
        cycles_flag = next(
            f for f in flags if f.series == "PR/kron/droplet:cycles"
        )
        assert cycles_flag.baseline == pytest.approx(100.5)  # median of priors
        assert "rose" in cycles_flag.to_text()

    def test_improvements_are_not_flagged(self, tmp_path):
        now = time.time()
        self._write(tmp_path / "a.json", self._sweep_payload(100.0), now - 20)
        self._write(tmp_path / "b.json", self._sweep_payload(80.0), now - 10)
        series = trend_series(scan_store(tmp_path))
        assert flag_regressions(series) == []

    def test_single_snapshot_never_flagged(self, tmp_path):
        self._write(
            tmp_path / "a.json", self._sweep_payload(100.0), time.time()
        )
        assert flag_regressions(trend_series(scan_store(tmp_path))) == []

    def test_table_rows_and_report(self, store):
        snapshots = scan_store(store)
        series = trend_series(snapshots)
        flags = flag_regressions(series)
        rows = trend_table_rows(series, flags)
        by_series = {r["series"]: r for r in rows}
        assert by_series["PR/kron/droplet:cycles"]["flag"] == "REGRESSION"
        assert by_series["PR/kron/droplet:ipc"]["flag"] is None
        assert by_series["PR/kron/droplet:cycles"]["delta_pct"] == pytest.approx(20.0)
        report = trend_report(store, threshold=0.05)
        assert report["format"] == "repro-trend-v1"
        assert len(report["snapshots"]) == 5
        assert {r["series"] for r in report["regressions"]} == {
            "PR/kron/droplet:cycles",
            "bench:PR/droplet:speedup",
        }
        json.dumps(report)  # JSON-safe

"""SweepRunner: ordering, determinism, error isolation, metrics.

The parallel tests here spawn real worker processes; points are kept
tiny (scale_shift=-6, a few thousand references) so the whole module
stays fast while still covering the cross-process paths.
"""

from __future__ import annotations

import pytest

from repro.droplet.composite import make_prefetch_setup
from repro.runtime import (
    SweepError,
    SweepPoint,
    SweepRunner,
    TraceCache,
    TraceSpec,
)
from repro.system.runner import compare_setups
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

MAX_REFS = 3000
SCALE_SHIFT = -6


def make_points(workloads=("PR", "BFS"), setups=("none", "droplet"), **kwargs):
    return [
        SweepPoint(
            workload=w,
            dataset="kron",
            setup=s,
            max_refs=MAX_REFS,
            scale_shift=SCALE_SHIFT,
            **kwargs,
        )
        for w in workloads
        for s in setups
    ]


def serial_runner(tmp_path, **kwargs) -> SweepRunner:
    return SweepRunner(trace_cache=TraceCache(tmp_path / "traces"), **kwargs)


def parallel_runner(tmp_path, workers=2, **kwargs) -> SweepRunner:
    return SweepRunner(
        workers=workers, trace_cache=TraceCache(tmp_path / "traces"), **kwargs
    )


class TestSerialSweep:
    def test_results_in_submission_order(self, tmp_path):
        points = make_points()
        report = serial_runner(tmp_path).run(points)
        assert [r.point for r in report.points] == points
        assert report.ok() and not report.errors()
        assert len(report) == len(points)

    def test_summaries_and_full_results(self, tmp_path):
        report = serial_runner(tmp_path).run(make_points(workloads=("PR",)))
        for r in report.points:
            assert r.summary["cycles"] > 0
            assert r.result is not None
            assert r.summary["cycles"] == r.result.cycles
            assert r.wall_time > 0

    def test_return_full_false_keeps_summaries_only(self, tmp_path):
        runner = serial_runner(tmp_path, return_full=False)
        report = runner.run(make_points(workloads=("PR",)))
        assert all(r.result is None and r.summary is not None for r in report)
        with pytest.raises(SweepError, match="return_full"):
            report.results_by_key()

    def test_error_isolation(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none", "bogus"))
        report = serial_runner(tmp_path).run(points)
        good, bad = report.points
        assert good.ok and not bad.ok
        assert bad.error.kind == "ValueError"
        assert "bogus" in bad.error.message
        assert bad.error.traceback  # full traceback captured for the log
        assert report.metrics.errors == 1
        with pytest.raises(SweepError, match="PR/kron/bogus"):
            report.raise_errors()

    def test_metrics_cold_then_warm(self, tmp_path):
        runner = serial_runner(tmp_path)
        points = make_points()  # 2 workloads x 2 setups -> 2 unique traces
        cold = runner.run(points)
        assert cold.metrics.total_points == 4
        assert cold.metrics.traces_generated == 2
        assert cold.metrics.cache_misses == 2
        assert cold.metrics.cache_hits == 2  # second setup reuses the memo
        runner.clear_memo()
        warm = runner.run(points)
        assert warm.metrics.traces_generated == 0
        assert warm.metrics.cache_hits == 4
        assert warm.metrics.elapsed > 0
        assert warm.metrics.as_dict()["trace_cache_hits"] == 4
        assert "4 points" in warm.metrics.to_text()

    def test_variant_points_change_the_machine(self, tmp_path):
        base, llc4, no_l2 = serial_runner(tmp_path).run(
            [
                SweepPoint("PR", "kron", max_refs=MAX_REFS, scale_shift=SCALE_SHIFT),
                SweepPoint(
                    "PR",
                    "kron",
                    max_refs=MAX_REFS,
                    scale_shift=SCALE_SHIFT,
                    llc_multiplier=4,
                ),
                SweepPoint(
                    "PR",
                    "kron",
                    max_refs=MAX_REFS,
                    scale_shift=SCALE_SHIFT,
                    l2_config=(None, 8),
                ),
            ]
        ).points
        assert llc4.summary["llc_mpki"] <= base.summary["llc_mpki"]
        assert no_l2.summary["l2_hit_rate"] == 0.0
        assert base.summary["l2_hit_rate"] > 0.0


class TestParallelSweep:
    def test_parallel_matches_serial(self, tmp_path):
        points = make_points()
        serial = serial_runner(tmp_path).run(points)
        parallel = parallel_runner(tmp_path).run(points)
        assert parallel.summaries() == serial.summaries()
        assert [r.point for r in parallel.points] == points
        assert parallel.metrics.workers == 2

    def test_parallel_error_isolation(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none", "bogus"))
        report = parallel_runner(tmp_path).run(points)
        good, bad = report.points
        assert good.ok and not bad.ok and bad.error.kind == "ValueError"

    def test_parallel_full_results_cross_the_pool(self, tmp_path):
        points = make_points(workloads=("PR",))
        report = parallel_runner(tmp_path).run(points)
        matrix = report.results_by_key()
        base = matrix[("PR", "kron", "none")]
        assert matrix[("PR", "kron", "droplet")].speedup_vs(base) > 0

    def test_warm_phase_traces_each_spec_once(self, tmp_path):
        points = make_points()  # 2 unique traces, 4 points
        report = parallel_runner(tmp_path).run(points)
        assert report.metrics.traces_generated == 2
        # warm phase: 2 misses; simulate phase: 4 memo/disk hits.
        assert report.metrics.cache_misses == 2
        assert report.metrics.cache_hits == 4
        assert 0 < report.metrics.utilization <= 1.0


class TestDeterminism:
    """Satellite: the same sweep is bit-identical however it executes."""

    def test_fig11_shaped_sweep_serial_vs_parallel(self, tmp_path):
        points = make_points(
            workloads=PAPER_WORKLOAD_ORDER,
            setups=("none", "stream", "streamMPP1", "droplet"),
        )
        assert len(points) == 20  # 5 workloads x 4 setups — Fig. 11 shaped
        serial = serial_runner(tmp_path, return_full=False).run(points)
        one_worker = SweepRunner(
            workers=1,
            trace_cache=TraceCache(tmp_path / "traces"),
            return_full=False,
        ).run(points)
        four_workers = parallel_runner(tmp_path, workers=4, return_full=False).run(
            points
        )
        assert serial.ok()
        assert one_worker.summaries() == serial.summaries()
        assert four_workers.summaries() == serial.summaries()

    def test_repeat_runs_identical_even_without_cache(self, tmp_path):
        points = make_points(workloads=("PR",))
        first = SweepRunner(trace_cache=False).run(points)
        second = SweepRunner(trace_cache=False).run(points)
        assert first.summaries() == second.summaries()
        assert first.metrics.cache_misses == 1  # traced once, memo reused


class TestMetricsAggregation:
    """Satellite: worker/utilization accounting on the serial fallback."""

    def test_serial_fallback_reports_one_serial_worker(self, tmp_path):
        for workers in (None, 0, 1):
            runner = SweepRunner(
                workers=workers, trace_cache=TraceCache(tmp_path / "traces")
            )
            report = runner.run(make_points(workloads=("PR",), setups=("none",)))
            assert report.metrics.workers == 1
            assert report.metrics.mode == "serial"
            # Serial execution is ~100% busy by construction; timer
            # granularity must never push it past 1.0.
            assert 0 < report.metrics.utilization <= 1.0
            assert "serial worker" in report.metrics.to_text()

    def test_parallel_mode_reported(self, tmp_path):
        report = parallel_runner(tmp_path).run(
            make_points(workloads=("PR",), setups=("none",))
        )
        assert report.metrics.mode == "parallel"
        assert report.metrics.workers == 2
        assert report.metrics.as_dict()["mode"] == "parallel"

    def test_degenerate_metrics_are_zero_not_nan(self):
        from repro.runtime.sweep import SweepMetrics

        assert SweepMetrics().utilization == 0.0
        assert SweepMetrics(elapsed=0.0, point_time=5.0).utilization == 0.0
        capped = SweepMetrics(elapsed=1.0, point_time=1.5, workers=1)
        assert capped.utilization == 1.0


class TestTelemetrySweep:
    """Tentpole: per-point telemetry payloads riding on sweep results."""

    def test_serial_sweep_attaches_payloads(self, tmp_path):
        runner = serial_runner(tmp_path, telemetry=True, telemetry_interval=2000)
        report = runner.run(make_points(workloads=("PR",)))
        from repro.telemetry import validate_telemetry_payload

        for r in report.points:
            assert r.telemetry is not None
            validate_telemetry_payload(r.telemetry)
            assert r.telemetry["meta"]["label"] == r.point.label
            # Sweep payloads stay slim: summary counts only, no records.
            assert "records" not in r.telemetry["events"]
            assert r.as_dict()["telemetry"] == r.telemetry

    def test_parallel_payloads_cross_the_pool(self, tmp_path):
        points = make_points(workloads=("PR",))
        serial = serial_runner(
            tmp_path, telemetry=True, telemetry_interval=2000
        ).run(points)
        parallel = parallel_runner(
            tmp_path, telemetry=True, telemetry_interval=2000
        ).run(points)
        for s, p in zip(serial.points, parallel.points):
            assert p.telemetry is not None
            assert p.telemetry["samples"] == s.telemetry["samples"]

    def test_telemetry_off_by_default(self, tmp_path):
        report = serial_runner(tmp_path).run(
            make_points(workloads=("PR",), setups=("none",))
        )
        assert all(r.telemetry is None for r in report.points)
        assert "telemetry" not in report.points[0].as_dict()

    def test_telemetry_does_not_change_summaries(self, tmp_path):
        points = make_points(workloads=("PR",))
        plain = serial_runner(tmp_path).run(points)
        instrumented = serial_runner(
            tmp_path, telemetry=True, telemetry_interval=2000
        ).run(points)
        assert instrumented.summaries() == plain.summaries()


class TestCompareSetups:
    """Satellite: compare_setups construction fix + PrefetchSetup objects."""

    @pytest.fixture(scope="class")
    def trace_run(self):
        return TraceSpec(
            "PR", "kron", max_refs=MAX_REFS, scale_shift=SCALE_SHIFT
        ).trace()

    def test_accepts_prefetch_setup_objects(self, trace_run):
        setups = ("none", make_prefetch_setup("droplet"))
        results = compare_setups(trace_run, setups=setups)
        assert set(results) == {"none", "droplet"}
        assert results["droplet"].setup_name == "droplet"

    def test_parallel_backend_matches_serial(self, trace_run):
        setups = ("none", "stream", "droplet")
        serial = compare_setups(trace_run, setups=setups)
        parallel = compare_setups(trace_run, setups=setups, workers=2)
        assert set(parallel) == set(serial)
        for name in setups:
            assert parallel[name].cycles == serial[name].cycles
            assert parallel[name].llc_mpki() == serial[name].llc_mpki()

    def test_runner_compare_serial_fallback(self, trace_run, tmp_path):
        runner = serial_runner(tmp_path)
        results = runner.compare(trace_run, ("none", "droplet"))
        assert set(results) == {"none", "droplet"}

"""Resilient sweep execution: faults, retries, timeouts, ledger resume.

Exercises the PR's tentpole guarantees end to end: fault-injected sweeps
(crashes, hangs, transient errors, cache corruption) complete with
results bit-identical to a clean run for every surviving point; serial
and parallel execution take identical retry/fail decisions; interrupted
runs resume from the ledger re-executing only unfinished points.

Parallel tests spawn real worker processes and real pool breakage, so
points stay tiny (scale_shift=-6, a few thousand references).
"""

from __future__ import annotations

import pytest

from repro.runtime import (
    FaultError,
    FaultPlan,
    LedgerError,
    PointError,
    PointResult,
    RetryPolicy,
    RunLedger,
    SweepPoint,
    SweepRunner,
    TraceCache,
    WorkerCrash,
    point_key,
)

MAX_REFS = 3000
SCALE_SHIFT = -6


def make_points(workloads=("PR", "BFS"), setups=("none", "droplet")):
    return [
        SweepPoint(
            workload=w,
            dataset="kron",
            setup=s,
            max_refs=MAX_REFS,
            scale_shift=SCALE_SHIFT,
        )
        for w in workloads
        for s in setups
    ]


def serial_runner(tmp_path, **kwargs) -> SweepRunner:
    kwargs.setdefault("return_full", False)
    return SweepRunner(trace_cache=TraceCache(tmp_path / "traces"), **kwargs)


def parallel_runner(tmp_path, workers=2, **kwargs) -> SweepRunner:
    kwargs.setdefault("return_full", False)
    return SweepRunner(
        workers=workers, trace_cache=TraceCache(tmp_path / "traces"), **kwargs
    )


FAST_RETRY = RetryPolicy(max_attempts=3, backoff=0.01)


class TestFaultPlan:
    def test_spec_roundtrip(self):
        plan = FaultPlan.from_spec("crash@2,hang@5,error@1,corrupt@3,error@4")
        assert plan.crash == (2,)
        assert plan.hang == (5,)
        assert plan.error == (1, 4)
        assert plan.corrupt == (3,)
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError, match="bad fault term"):
            FaultPlan.from_spec("explode@3")
        with pytest.raises(ValueError, match="bad fault term"):
            FaultPlan.from_spec("error3")

    def test_probabilistic_selection_is_seed_deterministic(self):
        a = FaultPlan(error_prob=0.5, seed=11)
        b = FaultPlan(error_prob=0.5, seed=11)
        picks = [a._selected("error", i) for i in range(64)]
        assert picks == [b._selected("error", i) for i in range(64)]
        assert any(picks) and not all(picks)
        c = FaultPlan(error_prob=0.5, seed=12)
        assert picks != [c._selected("error", i) for i in range(64)]

    def test_one_shot_trip_semantics(self, tmp_path):
        plan = FaultPlan(error=(0,), trip_dir=str(tmp_path / "trips"))
        with pytest.raises(FaultError):
            plan.fire(0)
        assert plan.fired("error", 0)
        plan.fire(0)  # second attempt passes through

    def test_refires_without_trip_dir(self):
        plan = FaultPlan(error=(0,))
        for _ in range(3):
            with pytest.raises(FaultError):
                plan.fire(0)

    def test_crash_raises_in_process(self):
        with pytest.raises(WorkerCrash):
            FaultPlan(crash=(1,)).fire(1, in_worker=False)


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff=0.5, backoff_factor=2.0, max_backoff=1.5)
        assert policy.delay(1) == 0.5
        assert policy.delay(2) == 1.0
        assert policy.delay(3) == 1.5  # capped
        assert RetryPolicy(backoff=0.0).delay(5) == 0.0

    def test_transient_classification(self):
        policy = RetryPolicy()
        assert policy.is_transient(PointError(kind="FaultError", message=""))
        assert policy.is_transient(PointError(kind="WorkerCrash", message=""))
        assert policy.is_transient(PointError(kind="PointTimeout", message=""))
        assert not policy.is_transient(PointError(kind="ValueError", message=""))
        assert not policy.is_transient(None)

    def test_hard_timeout_derived_from_soft(self):
        assert RetryPolicy().hard_timeout is None
        assert RetryPolicy(timeout=10.0).hard_timeout == 25.0


class TestSerialResilience:
    def test_transient_error_retries_to_success(self, tmp_path):
        points = make_points()
        clean = serial_runner(tmp_path).run(points)
        faults = FaultPlan(error=(1,), trip_dir=str(tmp_path / "trips"))
        report = serial_runner(
            tmp_path, retry=FAST_RETRY, faults=faults
        ).run(points)
        assert report.ok()
        assert report.summaries() == clean.summaries()
        assert report.points[1].attempts == 2
        assert report.metrics.retries == 1
        assert report.metrics.timeouts == 0

    def test_deterministic_failure_fails_fast(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none", "bogus"))
        report = serial_runner(tmp_path, retry=FAST_RETRY).run(points)
        good, bad = report.points
        assert good.ok and not bad.ok
        assert bad.error.kind == "ValueError"
        assert bad.attempts == 1  # no retry budget wasted
        assert report.metrics.retries == 0

    def test_retries_exhaust_with_persistent_fault(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none",))
        faults = FaultPlan(error=(0,))  # no trip_dir: re-fires every attempt
        report = serial_runner(
            tmp_path, retry=RetryPolicy(max_attempts=2, backoff=0.01),
            faults=faults,
        ).run(points)
        (failed,) = report.points
        assert not failed.ok
        assert failed.error.kind == "FaultError"
        assert failed.attempts == 2
        assert report.metrics.retries == 1

    def test_serial_crash_stand_in_is_retried(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none",))
        faults = FaultPlan(crash=(0,), trip_dir=str(tmp_path / "trips"))
        report = serial_runner(
            tmp_path, retry=FAST_RETRY, faults=faults
        ).run(points)
        (result,) = report.points
        assert result.ok and result.attempts == 2

    def test_hang_is_cut_by_watchdog_and_retried(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none",))
        faults = FaultPlan(
            hang=(0,), hang_seconds=30.0, trip_dir=str(tmp_path / "trips")
        )
        report = serial_runner(
            tmp_path,
            retry=RetryPolicy(max_attempts=3, timeout=1.0, backoff=0.01),
            faults=faults,
        ).run(points)
        (result,) = report.points
        assert result.ok and result.attempts == 2
        assert report.metrics.timeouts == 1
        assert report.metrics.retries == 1

    def test_exit_codes(self, tmp_path):
        ok = serial_runner(tmp_path).run(
            make_points(workloads=("PR",), setups=("none",))
        )
        assert ok.exit_code() == 0 and ok.failure_summary() == ""
        partial = serial_runner(tmp_path).run(
            make_points(workloads=("PR",), setups=("none", "bogus"))
        )
        assert partial.exit_code() == 1
        assert "1/2 sweep points failed" in partial.failure_summary()
        assert "PR/kron/bogus" in partial.failure_summary()
        total = serial_runner(tmp_path).run(
            make_points(workloads=("PR",), setups=("bogus",))
        )
        assert total.exit_code() == 2


class TestCorruptionRecovery:
    def test_corrupt_cache_entry_quarantined_and_regenerated(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none", "droplet"))
        clean = serial_runner(tmp_path).run(points)  # warms the disk cache
        faults = FaultPlan(corrupt=(0,), trip_dir=str(tmp_path / "trips"))
        # Fresh runner: empty memo, so the corrupted entry is actually read.
        report = serial_runner(
            tmp_path, retry=FAST_RETRY, faults=faults
        ).run(points)
        assert report.ok()
        assert report.summaries() == clean.summaries()
        assert report.metrics.quarantined_entries >= 1
        quarantine = tmp_path / "traces" / "quarantine"
        assert quarantine.is_dir() and any(quarantine.iterdir())


class TestParallelResilience:
    def test_worker_crash_recovers_bit_identical(self, tmp_path):
        points = make_points()
        clean = serial_runner(tmp_path).run(points)
        faults = FaultPlan(crash=(1,), trip_dir=str(tmp_path / "trips"))
        report = parallel_runner(
            tmp_path, retry=FAST_RETRY, faults=faults
        ).run(points)
        assert report.ok()
        assert report.summaries() == clean.summaries()
        assert report.points[1].attempts >= 2
        assert report.metrics.recovered_workers >= 1
        assert report.metrics.retries >= 1

    def test_worker_hang_cut_by_in_worker_watchdog(self, tmp_path):
        points = make_points()
        clean = serial_runner(tmp_path).run(points)
        faults = FaultPlan(
            hang=(0,), hang_seconds=60.0, trip_dir=str(tmp_path / "trips")
        )
        report = parallel_runner(
            tmp_path,
            retry=RetryPolicy(max_attempts=3, timeout=1.5, backoff=0.01),
            faults=faults,
        ).run(points)
        assert report.ok()
        assert report.summaries() == clean.summaries()
        assert report.metrics.timeouts >= 1


class TestSerialParallelParity:
    """Satellite: both execution modes take identical retry/fail decisions."""

    def test_recovered_faults_identical_results(self, tmp_path):
        points = make_points()
        faults_serial = FaultPlan(
            error=(1,), crash=(2,), trip_dir=str(tmp_path / "trips-s")
        )
        faults_parallel = FaultPlan(
            error=(1,), crash=(2,), trip_dir=str(tmp_path / "trips-p")
        )
        serial = serial_runner(
            tmp_path, retry=FAST_RETRY, faults=faults_serial
        ).run(points)
        parallel = parallel_runner(
            tmp_path, retry=FAST_RETRY, faults=faults_parallel
        ).run(points)
        assert serial.ok() and parallel.ok()
        assert parallel.summaries() == serial.summaries()
        assert serial.points[1].attempts >= 2
        assert parallel.points[1].attempts >= 2

    def test_exhausted_faults_identical_decisions(self, tmp_path):
        points = make_points(workloads=("PR",))
        faults = FaultPlan(error=(0,))  # persistent: exhausts retries
        policy = RetryPolicy(max_attempts=2, backoff=0.01)
        serial = serial_runner(tmp_path, retry=policy, faults=faults).run(points)
        parallel = parallel_runner(tmp_path, retry=policy, faults=faults).run(
            points
        )
        assert [r.ok for r in serial.points] == [r.ok for r in parallel.points]
        assert serial.points[0].error.kind == "FaultError"
        assert parallel.points[0].error.kind == "FaultError"
        assert parallel.summaries() == serial.summaries()
        assert serial.exit_code() == parallel.exit_code() == 1


class TestRunLedger:
    def point(self, setup="none"):
        return SweepPoint(
            "PR", "kron", setup=setup, max_refs=MAX_REFS, scale_shift=SCALE_SHIFT
        )

    def test_point_key_tracks_identity(self):
        assert point_key(self.point()) == point_key(self.point())
        assert point_key(self.point()) != point_key(self.point("droplet"))

    def test_record_and_restore_roundtrip(self, tmp_path):
        ledger = RunLedger("run-a", root=tmp_path)
        assert ledger.open() == 0
        result = PointResult(
            point=self.point(),
            summary={"cycles": 123},
            wall_time=1.5,
            trace_cache_hit=True,
            attempts=2,
        )
        ledger.record(self.point(), result)
        fresh = RunLedger("run-a", root=tmp_path)
        assert fresh.open() == 1
        restored = fresh.restore(self.point())
        assert restored.restored is True
        assert restored.summary == {"cycles": 123}
        assert restored.attempts == 2
        assert fresh.restore(self.point("droplet")) is None

    def test_failures_are_not_journaled(self, tmp_path):
        ledger = RunLedger("run-b", root=tmp_path)
        ledger.open()
        ledger.record(
            self.point(),
            PointResult(
                point=self.point(),
                error=PointError(kind="ValueError", message="nope"),
            ),
        )
        fresh = RunLedger("run-b", root=tmp_path)
        assert fresh.open() == 0

    def test_torn_tail_is_tolerated(self, tmp_path):
        ledger = RunLedger("run-c", root=tmp_path)
        ledger.open()
        ledger.record(
            self.point(), PointResult(point=self.point(), summary={"cycles": 1})
        )
        with open(ledger.path, "a") as handle:
            handle.write('{"kind": "point", "key": "tr')  # hard-kill torn line
        fresh = RunLedger("run-c", root=tmp_path)
        assert fresh.open() == 1

    def test_telemetry_settings_mismatch_rejected(self, tmp_path):
        RunLedger("run-d", root=tmp_path).open(telemetry=False)
        with pytest.raises(LedgerError, match="telemetry"):
            RunLedger("run-d", root=tmp_path).open(telemetry=True)

    def test_bad_run_ids_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RunLedger("../escape", root=tmp_path)
        with pytest.raises(ValueError):
            RunLedger("", root=tmp_path)


class TestResume:
    def test_resume_executes_only_unfinished_points(self, tmp_path):
        points = make_points()
        clean = serial_runner(tmp_path).run(points)
        # First (interrupted) run journals only the first two points.
        first = serial_runner(
            tmp_path, ledger=RunLedger("run-x", root=tmp_path / "runs")
        )
        first.run(points[:2])
        # Resume: same run id, full point list, fresh runner/memo.
        resumed = serial_runner(
            tmp_path, ledger=RunLedger("run-x", root=tmp_path / "runs")
        )
        report = resumed.run(points)
        assert report.ok()
        assert [r.restored for r in report.points] == [True, True, False, False]
        assert report.metrics.restored == 2
        assert report.summaries() == clean.summaries()
        # Restored points were not re-executed: no fresh trace/cache work.
        assert report.metrics.cache_hits + report.metrics.cache_misses == 2

    def test_fully_journaled_run_restores_everything(self, tmp_path):
        points = make_points(workloads=("PR",))
        serial_runner(
            tmp_path, ledger=RunLedger("run-y", root=tmp_path / "runs")
        ).run(points)
        report = serial_runner(
            tmp_path, ledger=RunLedger("run-y", root=tmp_path / "runs")
        ).run(points)
        assert report.metrics.restored == len(points)
        assert report.metrics.traces_generated == 0
        assert report.metrics.cache_hits == 0 and report.metrics.cache_misses == 0


class TestResilienceTelemetry:
    def test_counters_surface_as_gauges(self, tmp_path):
        from repro.telemetry import MetricRegistry

        points = make_points(workloads=("PR",), setups=("none",))
        faults = FaultPlan(error=(0,), trip_dir=str(tmp_path / "trips"))
        runner = serial_runner(tmp_path, retry=FAST_RETRY, faults=faults)
        registry = MetricRegistry()
        runner.register_telemetry(registry)
        assert registry.snapshot()["sweep.retries"] == 0
        runner.run(points)
        snapshot = registry.snapshot()
        assert snapshot["sweep.retries"] == 1
        assert snapshot["sweep.points_completed"] == 1
        assert snapshot["sweep.points_failed"] == 0

    def test_metrics_dict_and_text_carry_resilience_fields(self, tmp_path):
        points = make_points(workloads=("PR",), setups=("none",))
        faults = FaultPlan(error=(0,), trip_dir=str(tmp_path / "trips"))
        report = serial_runner(
            tmp_path, retry=FAST_RETRY, faults=faults
        ).run(points)
        d = report.metrics.as_dict()
        for key in (
            "retries",
            "timeouts",
            "recovered_workers",
            "quarantined_entries",
            "restored_points",
        ):
            assert key in d
        assert d["retries"] == 1
        assert "resilience: 1 retries" in report.metrics.to_text()

    def test_table_rows_show_tries_for_resilient_runs(self, tmp_path):
        from repro.reporting import sweep_table_rows

        points = make_points(workloads=("PR",))
        faults = FaultPlan(error=(0,), trip_dir=str(tmp_path / "trips"))
        report = serial_runner(
            tmp_path, retry=FAST_RETRY, faults=faults
        ).run(points)
        rows = sweep_table_rows(report)
        assert rows[0]["tries"] == "2"
        assert rows[1]["tries"] == "1"
        plain = serial_runner(tmp_path).run(points)
        assert "tries" not in sweep_table_rows(plain)[0]

"""CLI tests (argument parsing and command execution)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "PR", "kron", "--setups", "droplet", "--max-refs", "100"]
        )
        assert args.workload == "PR"
        assert args.setups == ["droplet"]
        assert args.max_refs == 100

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "KMEANS", "kron"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig11b", "--quick"])
        assert args.name == "fig11b" and args.quick

    def test_profile_args(self):
        args = build_parser().parse_args(
            [
                "profile", "--workload", "bfs", "--dataset", "mesh",
                "--interval", "1000", "--out", "somewhere",
            ]
        )
        assert args.workload == "BFS"  # case-normalized
        assert args.dataset == "mesh"
        assert args.setup == "droplet"
        assert args.interval == 1000 and args.out == "somewhere"

    def test_profile_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--workload", "bfs", "--dataset", "nope"]
            )

    def test_sweep_telemetry_flag(self):
        args = build_parser().parse_args(
            ["sweep", "--telemetry", "--telemetry-interval", "9000"]
        )
        assert args.telemetry and args.telemetry_interval == 9000
        assert not build_parser().parse_args(["sweep"]).telemetry

    def test_profile_attribution_flags(self):
        args = build_parser().parse_args(
            ["profile", "--workload", "bfs", "--dataset", "mesh"]
        )
        assert not args.no_attribution and not args.no_classify
        args = build_parser().parse_args(
            [
                "profile", "--workload", "bfs", "--dataset", "mesh",
                "--no-attribution", "--no-classify",
            ]
        )
        assert args.no_attribution and args.no_classify

    def test_diff_args(self):
        args = build_parser().parse_args(
            ["diff", "a.json", "b.json", "--out", "d.json", "--metrics", "cache"]
        )
        assert args.baseline == "a.json" and args.candidate == "b.json"
        assert args.out == "d.json" and args.metrics == ["cache"]
        assert args.phase_rate == "llc_mpki_property"


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale-shift", "-5"]) == 0
        out = capsys.readouterr().out
        assert "kron" in out and "road" in out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate", "PR", "kron",
                "--scale-shift", "-4",
                "--max-refs", "5000",
                "--setups", "droplet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "droplet" in out and "speedup" in out

    def test_figure_quick(self, capsys):
        assert main(["figure", "fig01", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Baseline architecture" in out
        assert "Prefetchers for evaluation" in out

    def test_profile(self, capsys, tmp_path):
        import json

        from repro.telemetry import validate_telemetry_payload

        out_dir = tmp_path / "prof"
        code = main(
            [
                "profile",
                "--workload", "bfs",
                "--dataset", "mesh",
                "--scale-shift", "-3",
                "--max-refs", "8000",
                "--interval", "2000",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profiled BFS/mesh/droplet" in out
        assert "timeline:" in out
        payload = json.loads((out_dir / "profile.json").read_text())
        validate_telemetry_payload(payload, require_phases=True)
        assert payload["meta"]["workload"] == "BFS"
        assert (out_dir / "profile.html").exists()
        assert (out_dir / "profile.csv").exists()
        assert (out_dir / "profile.events.jsonl").exists()
        # Attribution is on by default for profiles.
        assert "attribution:" in out
        assert "attribution" in payload
        assert "attribution" in payload["families"]

    def test_profile_no_attribution(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "prof"
        code = main(
            [
                "profile",
                "--workload", "bfs",
                "--dataset", "mesh",
                "--scale-shift", "-3",
                "--max-refs", "4000",
                "--no-attribution",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attribution:" not in out
        payload = json.loads((out_dir / "profile.json").read_text())
        assert "attribution" not in payload

    def test_profile_warns_on_dropped_events(self, capsys, tmp_path):
        code = main(
            [
                "profile",
                "--workload", "bfs",
                "--dataset", "mesh",
                "--scale-shift", "-3",
                "--max-refs", "8000",
                "--events", "8",  # tiny ring: must drop and warn
                "--out", str(tmp_path / "prof"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "dropped" in err and "--events" in err

    def test_diff_command(self, capsys, tmp_path):
        import json

        from repro.telemetry import validate_diff_payload

        for setup, out_dir in (("stream", "a"), ("droplet", "b")):
            assert main(
                [
                    "profile",
                    "--workload", "bfs",
                    "--dataset", "mesh",
                    "--scale-shift", "-3",
                    "--max-refs", "6000",
                    "--interval", "2000",
                    "--setup", setup,
                    "--out", str(tmp_path / out_dir),
                ]
            ) == 0
        capsys.readouterr()
        diff_path = tmp_path / "diff.json"
        code = main(
            [
                "diff",
                str(tmp_path / "a" / "profile.json"),
                str(tmp_path / "b" / "profile.json"),
                "--out", str(diff_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "llc_mpki_property" in out
        assert "per-phase llc_mpki_property" in out
        diff = json.loads(diff_path.read_text())
        validate_diff_payload(diff)
        assert diff["baseline"]["meta"]["setup"] == "stream"
        assert diff["candidate"]["meta"]["setup"] == "droplet"
        assert (tmp_path / "diff.html").exists()

    def test_sweep_with_telemetry(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--workloads", "PR",
                "--datasets", "kron",
                "--setups", "droplet",
                "--max-refs", "3000",
                "--scale-shift", "-6",
                "--no-trace-cache",
                "--telemetry",
                "--telemetry-interval", "2000",
                "--out", str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["formats"]["telemetry"] == "repro-telemetry-v1"
        for entry in payload["points"]:
            assert entry["seed"] == 7  # kron paper-default backfilled
            assert entry["telemetry"]["samples"]

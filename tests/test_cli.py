"""CLI tests (argument parsing and command execution)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "PR", "kron", "--setups", "droplet", "--max-refs", "100"]
        )
        assert args.workload == "PR"
        assert args.setups == ["droplet"]
        assert args.max_refs == 100

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "KMEANS", "kron"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig11b", "--quick"])
        assert args.name == "fig11b" and args.quick


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale-shift", "-5"]) == 0
        out = capsys.readouterr().out
        assert "kron" in out and "road" in out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate", "PR", "kron",
                "--scale-shift", "-4",
                "--max-refs", "5000",
                "--setups", "droplet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "droplet" in out and "speedup" in out

    def test_figure_quick(self, capsys):
        assert main(["figure", "fig01", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Baseline architecture" in out
        assert "Prefetchers for evaluation" in out

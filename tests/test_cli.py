"""CLI tests (argument parsing and command execution)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "PR", "kron", "--setups", "droplet", "--max-refs", "100"]
        )
        assert args.workload == "PR"
        assert args.setups == ["droplet"]
        assert args.max_refs == 100

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "KMEANS", "kron"])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig11b", "--quick"])
        assert args.name == "fig11b" and args.quick

    def test_profile_args(self):
        args = build_parser().parse_args(
            [
                "profile", "--workload", "bfs", "--dataset", "mesh",
                "--interval", "1000", "--out", "somewhere",
            ]
        )
        assert args.workload == "BFS"  # case-normalized
        assert args.dataset == "mesh"
        assert args.setup == "droplet"
        assert args.interval == 1000 and args.out == "somewhere"

    def test_profile_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["profile", "--workload", "bfs", "--dataset", "nope"]
            )

    def test_sweep_telemetry_flag(self):
        args = build_parser().parse_args(
            ["sweep", "--telemetry", "--telemetry-interval", "9000"]
        )
        assert args.telemetry and args.telemetry_interval == 9000
        assert not build_parser().parse_args(["sweep"]).telemetry

    def test_profile_attribution_flags(self):
        args = build_parser().parse_args(
            ["profile", "--workload", "bfs", "--dataset", "mesh"]
        )
        assert not args.no_attribution and not args.no_classify
        args = build_parser().parse_args(
            [
                "profile", "--workload", "bfs", "--dataset", "mesh",
                "--no-attribution", "--no-classify",
            ]
        )
        assert args.no_attribution and args.no_classify

    def test_diff_args(self):
        args = build_parser().parse_args(
            ["diff", "a.json", "b.json", "--out", "d.json", "--metrics", "cache"]
        )
        assert args.baseline == "a.json" and args.candidate == "b.json"
        assert args.out == "d.json" and args.metrics == ["cache"]
        assert args.phase_rate == "llc_mpki_property"

    def test_sweep_resilience_flags(self):
        args = build_parser().parse_args(
            [
                "sweep", "--timeout", "30", "--retries", "5",
                "--backoff", "0.5", "--faults", "crash@2,hang@5",
                "--run-id", "myrun", "--ledger-root", "/tmp/runs",
            ]
        )
        assert args.timeout == 30.0 and args.retries == 5
        assert args.backoff == 0.5 and args.faults == "crash@2,hang@5"
        assert args.run_id == "myrun" and args.ledger_root == "/tmp/runs"
        defaults = build_parser().parse_args(["sweep"])
        assert defaults.timeout is None and defaults.retries == 2
        assert defaults.resume is None and not defaults.no_ledger

    def test_sweep_resume_flag(self):
        args = build_parser().parse_args(["sweep", "--resume", "run-1"])
        assert args.resume == "run-1"

    def test_sweep_no_spans_flag(self):
        assert build_parser().parse_args(["sweep", "--no-spans"]).no_spans
        assert not build_parser().parse_args(["sweep"]).no_spans

    def test_status_args(self):
        args = build_parser().parse_args(
            ["status", "run-1", "--json", "--ledger-root", "/tmp/runs",
             "--chrome", "out.json"]
        )
        assert args.run_id == "run-1" and args.json
        assert args.ledger_root == "/tmp/runs" and args.chrome == "out.json"
        defaults = build_parser().parse_args(["status", "run-1"])
        assert not defaults.json and not defaults.watch
        assert defaults.poll == 2.0 and defaults.ledger_root is None

    def test_trend_args(self):
        args = build_parser().parse_args(
            ["trend", "store", "--threshold", "0.1", "--json", "--strict"]
        )
        assert args.store == "store" and args.threshold == 0.1
        assert args.json and args.strict
        defaults = build_parser().parse_args(["trend"])
        assert defaults.store == "." and defaults.threshold == 0.05

    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--host", "0.0.0.0", "--port", "9000", "--workers", "4",
             "--ledger-root", "/tmp/runs", "--access-log", "/tmp/a.jsonl",
             "--drain-timeout", "5"]
        )
        assert args.host == "0.0.0.0" and args.port == 9000
        assert args.workers == 4 and args.ledger_root == "/tmp/runs"
        assert args.access_log == "/tmp/a.jsonl" and args.drain_timeout == 5.0
        defaults = build_parser().parse_args(["serve"])
        # --port defaults to None so --join can pick an ephemeral port;
        # _cmd_serve resolves None to 8321 for a standalone daemon.
        assert defaults.host == "127.0.0.1" and defaults.port is None
        assert defaults.workers == 2 and defaults.ledger_root is None
        assert defaults.join is None and defaults.max_queue == 256
        assert defaults.lease_ttl == 30.0 and defaults.faults is None

    def test_submit_args(self):
        args = build_parser().parse_args(
            ["submit", "--url", "http://h:1", "--workloads", "PR", "BFS",
             "--run-id", "r1", "--wait", "--json", "--deadline", "60",
             "--submit-retries", "3", "--submit-backoff", "0.1"]
        )
        assert args.url == "http://h:1" and args.workloads == ["PR", "BFS"]
        assert args.run_id == "r1" and args.wait and args.json
        assert args.deadline == 60.0 and args.submit_retries == 3
        defaults = build_parser().parse_args(["submit"])
        assert defaults.run_id is None and not defaults.wait
        assert defaults.submit_retries == 8

    def test_profile_prom_flag(self):
        args = build_parser().parse_args(
            ["profile", "--workload", "pr", "--dataset", "kron", "--prom"]
        )
        assert args.prom
        assert not build_parser().parse_args(
            ["profile", "--workload", "pr", "--dataset", "kron"]
        ).prom


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets", "--scale-shift", "-5"]) == 0
        out = capsys.readouterr().out
        assert "kron" in out and "road" in out

    def test_simulate(self, capsys):
        code = main(
            [
                "simulate", "PR", "kron",
                "--scale-shift", "-4",
                "--max-refs", "5000",
                "--setups", "droplet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "droplet" in out and "speedup" in out

    def test_figure_quick(self, capsys):
        assert main(["figure", "fig01", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Baseline architecture" in out
        assert "Prefetchers for evaluation" in out

    def test_profile(self, capsys, tmp_path):
        import json

        from repro.telemetry import validate_telemetry_payload

        out_dir = tmp_path / "prof"
        code = main(
            [
                "profile",
                "--workload", "bfs",
                "--dataset", "mesh",
                "--scale-shift", "-3",
                "--max-refs", "8000",
                "--interval", "2000",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "profiled BFS/mesh/droplet" in out
        assert "timeline:" in out
        payload = json.loads((out_dir / "profile.json").read_text())
        validate_telemetry_payload(payload, require_phases=True)
        assert payload["meta"]["workload"] == "BFS"
        assert (out_dir / "profile.html").exists()
        assert (out_dir / "profile.csv").exists()
        assert (out_dir / "profile.events.jsonl").exists()
        # Attribution is on by default for profiles.
        assert "attribution:" in out
        assert "attribution" in payload
        assert "attribution" in payload["families"]

    def test_profile_prom_output(self, capsys, tmp_path):
        from repro.telemetry import parse_prom_text

        out_dir = tmp_path / "prof"
        code = main(
            [
                "profile",
                "--workload", "pr",
                "--dataset", "kron",
                "--scale-shift", "-6",
                "--max-refs", "3000",
                "--no-attribution",
                "--no-classify",
                "--prom",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        assert "prom" in capsys.readouterr().out
        text = (out_dir / "profile.prom").read_text()
        parsed = parse_prom_text(text)  # strict: valid exposition format
        labels = '{dataset="kron",setup="droplet",workload="PR"}'
        assert parsed["repro_core_instructions_total" + labels] > 0
        assert ("repro_rate_ipc" + labels) in parsed

    def test_profile_no_attribution(self, capsys, tmp_path):
        import json

        out_dir = tmp_path / "prof"
        code = main(
            [
                "profile",
                "--workload", "bfs",
                "--dataset", "mesh",
                "--scale-shift", "-3",
                "--max-refs", "4000",
                "--no-attribution",
                "--out", str(out_dir),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "attribution:" not in out
        payload = json.loads((out_dir / "profile.json").read_text())
        assert "attribution" not in payload

    def test_profile_warns_on_dropped_events(self, capsys, tmp_path):
        code = main(
            [
                "profile",
                "--workload", "bfs",
                "--dataset", "mesh",
                "--scale-shift", "-3",
                "--max-refs", "8000",
                "--events", "8",  # tiny ring: must drop and warn
                "--out", str(tmp_path / "prof"),
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "dropped" in err and "--events" in err

    def test_diff_command(self, capsys, tmp_path):
        import json

        from repro.telemetry import validate_diff_payload

        for setup, out_dir in (("stream", "a"), ("droplet", "b")):
            assert main(
                [
                    "profile",
                    "--workload", "bfs",
                    "--dataset", "mesh",
                    "--scale-shift", "-3",
                    "--max-refs", "6000",
                    "--interval", "2000",
                    "--setup", setup,
                    "--out", str(tmp_path / out_dir),
                ]
            ) == 0
        capsys.readouterr()
        diff_path = tmp_path / "diff.json"
        code = main(
            [
                "diff",
                str(tmp_path / "a" / "profile.json"),
                str(tmp_path / "b" / "profile.json"),
                "--out", str(diff_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "llc_mpki_property" in out
        assert "per-phase llc_mpki_property" in out
        diff = json.loads(diff_path.read_text())
        validate_diff_payload(diff)
        assert diff["baseline"]["meta"]["setup"] == "stream"
        assert diff["candidate"]["meta"]["setup"] == "droplet"
        assert (tmp_path / "diff.html").exists()

    def test_sweep_with_telemetry(self, capsys, tmp_path, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path / "runs"))
        report_path = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "--workloads", "PR",
                "--datasets", "kron",
                "--setups", "droplet",
                "--max-refs", "3000",
                "--scale-shift", "-6",
                "--no-trace-cache",
                "--telemetry",
                "--telemetry-interval", "2000",
                "--out", str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text())
        assert payload["formats"]["telemetry"] == "repro-telemetry-v1"
        for entry in payload["points"]:
            assert entry["seed"] == 7  # kron paper-default backfilled
            assert entry["telemetry"]["samples"]


class TestSweepResilience:
    """Satellite: exit codes, fault injection and ledger resume via the CLI."""

    BASE = [
        "sweep",
        "--workloads", "PR",
        "--datasets", "kron",
        "--max-refs", "3000",
        "--scale-shift", "-6",
        "--no-trace-cache",
    ]

    @pytest.fixture(autouse=True)
    def _ledger_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path / "runs"))
        self.tmp_path = tmp_path

    def test_partial_failure_exits_1_with_stderr_summary(self, capsys):
        # 2 points (none + droplet); the fault re-fires every attempt.
        code = main(
            self.BASE
            + ["--setups", "droplet", "--faults", "error@0", "--retries", "0",
               "--no-ledger", "--backoff", "0.01"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "1/2 sweep points failed" in err
        assert "FaultError" in err

    def test_total_failure_exits_2(self, capsys):
        code = main(
            self.BASE
            + ["--setups", "none", "--faults", "error@0", "--retries", "0",
               "--no-ledger", "--backoff", "0.01"]
        )
        assert code == 2
        assert "1/1 sweep points failed" in capsys.readouterr().err

    def test_injected_fault_recovers_with_retries(self, capsys):
        # With a ledger the fault plan gets a trip dir: one-shot fault,
        # so the default retry budget recovers the point.
        code = main(
            self.BASE
            + ["--setups", "droplet", "--faults", "error@1",
               "--run-id", "faulty", "--backoff", "0.01"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resilience: 1 retries" in out
        assert "run id faulty" in out

    def test_resume_restores_journaled_points(self, capsys, tmp_path):
        import json

        assert main(self.BASE + ["--setups", "droplet", "--run-id", "rerun"]) == 0
        capsys.readouterr()
        report_path = tmp_path / "resumed.json"
        code = main(
            self.BASE
            + ["--setups", "droplet", "--resume", "rerun",
               "--out", str(report_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resume" in out
        payload = json.loads(report_path.read_text())
        assert payload["metrics"]["restored_points"] == 2
        assert payload["metrics"]["traces_generated"] == 0
        assert all(p["restored"] for p in payload["points"])

    def test_resume_unknown_run_id_exits_2(self, capsys):
        code = main(self.BASE + ["--resume", "no-such-run"])
        assert code == 2
        assert "no ledger found" in capsys.readouterr().err

    def test_failure_summary_names_span_artifacts(self, capsys):
        code = main(
            self.BASE
            + ["--setups", "droplet", "--faults", "error@0", "--retries", "0",
               "--run-id", "broken", "--backoff", "0.01"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "ledger:" in err and "spans:" in err and "trace:" in err
        assert "repro status broken" in err


class TestStatusAndTrend:
    """Tentpole CLI verbs: live/post-hoc run status and cross-run trends."""

    BASE = [
        "sweep",
        "--workloads", "PR",
        "--datasets", "kron",
        "--setups", "droplet",
        "--max-refs", "3000",
        "--scale-shift", "-6",
        "--no-trace-cache",
    ]

    @pytest.fixture(autouse=True)
    def _ledger_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUN_LEDGER", str(tmp_path / "runs"))
        self.tmp_path = tmp_path

    def test_status_matches_sweep_report(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "sweep.json"
        assert main(
            self.BASE
            + ["--faults", "error@0", "--run-id", "st", "--backoff", "0.01",
               "--out", str(report_path)]
        ) == 0
        capsys.readouterr()
        assert main(["status", "st", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        report = json.loads(report_path.read_text())
        assert payload["finished"] is True
        # The baseline "none" setup rides along: 2 points total.
        assert payload["states"]["done"] == 2
        for key in ("retries", "timeouts", "recovered_workers", "errors"):
            assert payload["counters"][key] == report["metrics"][key], key
        assert payload["counters"]["retries"] == 1

    def test_status_human_rendering_and_chrome_export(self, capsys, tmp_path):
        import json

        assert main(self.BASE + ["--run-id", "hr"]) == 0
        capsys.readouterr()
        trace_path = tmp_path / "export.trace.json"
        assert main(["status", "hr", "--chrome", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "run hr: 2 point(s)" in out
        assert "[finished]" in out
        assert "done" in out
        trace = json.loads(trace_path.read_text())
        assert any(e["name"] == "point" for e in trace["traceEvents"])

    def test_status_unknown_run_exits_2(self, capsys):
        assert main(["status", "ghost"]) == 2
        assert "no ledger or span sidecar" in capsys.readouterr().err

    def test_status_watch_terminates_on_finished_run(self, capsys):
        assert main(self.BASE + ["--run-id", "wt"]) == 0
        capsys.readouterr()
        assert main(["status", "wt", "--watch", "--poll", "0.1"]) == 0
        assert "[finished]" in capsys.readouterr().out

    def test_trend_flags_regression_and_strict_exit(self, capsys, tmp_path):
        import json
        import os
        import time

        store = tmp_path / "store"
        store.mkdir()
        now = time.time()
        for i, speedup in enumerate((2.0, 2.1, 1.2)):
            path = store / ("bench-%d.json" % i)
            path.write_text(json.dumps({
                "schema": "repro-replay-bench-v2",
                "cells": {"PR": {"droplet": {"speedup": speedup}}},
            }))
            os.utime(path, (now - 30 + 10 * i,) * 2)
        assert main(["trend", str(store)]) == 0
        captured = capsys.readouterr()
        assert "bench:PR/droplet:speedup" in captured.out
        assert "REGRESSION" in captured.err
        assert main(["trend", str(store), "--strict"]) == 1
        capsys.readouterr()
        assert main(["trend", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "repro-trend-v1"
        assert payload["regressions"]

    def test_trend_empty_store_exits_2(self, capsys, tmp_path):
        assert main(["trend", str(tmp_path / "empty")]) == 2
        assert "no sweep reports" in capsys.readouterr().err

    def test_trend_empty_store_strict_json_does_not_crash(self, capsys, tmp_path):
        import json

        # --strict on an empty store is "nothing to check", not a
        # regression: the empty-store exit (2) wins, without a traceback.
        assert main(["trend", str(tmp_path / "void"), "--strict"]) == 2
        capsys.readouterr()
        assert main(["trend", str(tmp_path / "void"), "--json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["snapshots"] == [] and payload["regressions"] == []

    def test_trend_single_snapshot_strict_exits_0(self, capsys, tmp_path):
        import json

        store = tmp_path / "store"
        store.mkdir()
        (store / "only.json").write_text(json.dumps({
            "schema": "repro-replay-bench-v2",
            "cells": {"PR": {"droplet": {"speedup": 2.0}}},
        }))
        # One snapshot has no baseline to regress against: no flags,
        # strict mode stays green.
        assert main(["trend", str(store), "--strict"]) == 0
        out = capsys.readouterr()
        assert "1 snapshot(s)" in out.out
        assert "REGRESSION" not in out.err

    def test_trend_mixed_schema_versions_skipped_without_flags(
        self, capsys, tmp_path
    ):
        import json
        import os
        import time

        store = tmp_path / "store"
        store.mkdir()
        now = time.time()
        # Two parsable same-schema snapshots with flat numbers...
        for i in range(2):
            path = store / ("bench-%d.json" % i)
            path.write_text(json.dumps({
                "schema": "repro-replay-bench-v2",
                "cells": {"PR": {"droplet": {"speedup": 2.0}}},
            }))
            os.utime(path, (now - 20 + 10 * i,) * 2)
        # ...plus unknown/older schema versions and junk, all of which
        # must be skipped silently rather than crash or skew the series.
        (store / "old-bench.json").write_text(json.dumps({
            "schema": "repro-replay-bench-v1",
            "cells": {"PR": {"droplet": {"speedup": 0.1}}},
        }))
        (store / "old-sweep.json").write_text(json.dumps({
            "format": "repro-sweep-v1",
            "points": [],
        }))
        (store / "not-even.json").write_text("{{{")
        (store / "list.json").write_text("[1, 2, 3]")
        assert main(["trend", str(store), "--strict"]) == 0
        captured = capsys.readouterr()
        assert "2 snapshot(s)" in captured.out
        assert "REGRESSION" not in captured.err
        capsys.readouterr()
        assert main(["trend", str(store), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["snapshots"]) == 2
        assert payload["regressions"] == []

"""Unit tests for ROB windowing."""

import pytest

from repro.core import iter_windows
from repro.trace import DataType, TraceBuffer, stream_trace


class TestIterWindows:
    def test_window_instruction_budget(self):
        t = stream_trace(100, gap=3)  # 4 instructions per ref
        windows = list(iter_windows(t, rob_entries=128))
        # 128 / 4 = 32 refs per window.
        assert windows[0].num_refs == 32
        assert windows[0].instructions == 128
        assert sum(w.num_refs for w in windows) == 100

    def test_windows_are_contiguous(self):
        t = stream_trace(50, gap=1)
        windows = list(iter_windows(t, 16))
        assert windows[0].start == 0
        for prev, cur in zip(windows, windows[1:]):
            assert cur.start == prev.stop
        assert windows[-1].stop == 50

    def test_tail_window(self):
        t = stream_trace(10, gap=0)
        windows = list(iter_windows(t, 8))
        assert len(windows) == 2
        assert windows[1].num_refs == 2

    def test_oversized_single_ref(self):
        tb = TraceBuffer()
        tb.load(0, DataType.STRUCTURE, gap=1000)
        windows = list(iter_windows(tb.finalize(), 128))
        assert len(windows) == 1
        assert windows[0].instructions == 1001

    def test_empty_trace(self):
        assert list(iter_windows(TraceBuffer().finalize(), 128)) == []

    def test_invalid_rob(self):
        with pytest.raises(ValueError):
            list(iter_windows(stream_trace(5), 0))

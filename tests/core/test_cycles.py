"""Unit tests for cycle-stack accounting."""

from repro.core import CycleStack


class TestCycleStack:
    def test_accumulation(self):
        s = CycleStack()
        s.add_window(10.0, {"DRAM": 30.0}, instructions=40)
        s.add_window(10.0, {"DRAM": 20.0, "L3": 10.0}, instructions=40)
        assert s.base == 20.0
        assert s.stall == {"DRAM": 50.0, "L3": 10.0}
        assert s.total_cycles == 80.0
        assert s.instructions == 80

    def test_cpi_ipc(self):
        s = CycleStack()
        s.add_window(50.0, {"DRAM": 50.0}, instructions=200)
        assert s.cpi == 0.5
        assert s.ipc == 2.0

    def test_fractions_sum_to_one(self):
        s = CycleStack()
        s.add_window(15.0, {"DRAM": 45.0, "L3": 30.0, "L2": 10.0}, 100)
        fr = s.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9
        assert fr["base"] == 0.15
        assert s.dram_bound_fraction() == 0.45

    def test_empty(self):
        s = CycleStack()
        assert s.cpi == 0.0
        assert s.ipc == 0.0
        assert s.dram_bound_fraction() == 0.0
        assert s.fractions() == {"base": 0.0}

"""Unit tests for dependency-chain analysis (Figs. 5/6 machinery)."""

from repro.core import chain_stats
from repro.trace import (
    DataType,
    TraceBuffer,
    gather_trace,
    pointer_chase_trace,
    stream_trace,
)


class TestChainStats:
    def test_independent_loads_have_no_chains(self):
        cs = chain_stats(stream_trace(100))
        assert cs.num_chains == 0
        assert cs.chained_load_fraction == 0.0
        assert cs.mean_chain_length == 0.0

    def test_gather_pairs(self):
        """Producer-consumer pairs: chains of length exactly 2."""
        cs = chain_stats(gather_trace(50, gap=0), rob_entries=1000)
        assert cs.mean_chain_length == 2.0
        assert cs.chained_load_fraction == 1.0
        assert cs.num_chains == 50

    def test_pointer_chase_single_window(self):
        t = pointer_chase_trace(20, gap=0)
        cs = chain_stats(t, rob_entries=100)
        assert cs.num_chains == 1
        assert cs.sum_chain_length == 20
        assert cs.max_chain_length == 20

    def test_window_boundary_breaks_chains(self):
        """Dependencies across ROB windows don't constrain the window."""
        t = pointer_chase_trace(20, gap=0)
        cs = chain_stats(t, rob_entries=10)  # 10 loads per window
        assert cs.max_chain_length == 10
        assert cs.num_chains == 2

    def test_dep_on_store_ignored(self):
        tb = TraceBuffer()
        s = tb.store(0, DataType.PROPERTY)
        tb.load(8, DataType.PROPERTY, dep=s)
        cs = chain_stats(tb.finalize())
        assert cs.num_chains == 0

    def test_fanout_counts_once(self):
        """One producer feeding three consumers is one 4-load chain."""
        tb = TraceBuffer()
        p = tb.load(0, DataType.STRUCTURE)
        for i in range(3):
            tb.load(100 + 8 * i, DataType.PROPERTY, dep=p)
        cs = chain_stats(tb.finalize(), rob_entries=100)
        assert cs.num_chains == 1
        assert cs.sum_chain_length == 4

    def test_total_loads_counted(self):
        cs = chain_stats(gather_trace(10))
        assert cs.total_loads == 20

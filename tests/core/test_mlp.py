"""Unit tests for window timing / MLP computation."""

import pytest

from repro.core import compute_window_timing


class TestWindowTiming:
    def test_empty_window(self):
        t = compute_window_timing([], window_start=0)
        assert t.exposed == 0.0
        assert t.mlp == 0.0

    def test_single_miss(self):
        t = compute_window_timing([(0, -1, "DRAM", 120.0)], 0)
        assert t.critical_path == 120.0
        assert t.exposed == 120.0
        assert t.mlp == 1.0

    def test_independent_misses_overlap_up_to_mshr(self):
        loads = [(i, -1, "DRAM", 100.0) for i in range(5)]
        t = compute_window_timing(loads, 0, mshr=10)
        assert t.critical_path == 100.0
        assert t.exposed == 100.0
        assert t.mlp == 5.0

    def test_mshr_bound_caps_overlap(self):
        loads = [(i, -1, "DRAM", 100.0) for i in range(40)]
        t = compute_window_timing(loads, 0, mshr=10)
        assert t.bandwidth_bound == 400.0
        assert t.exposed == 400.0
        assert t.mlp == 10.0

    def test_dependency_serializes(self):
        loads = [(0, -1, "DRAM", 100.0), (1, 0, "DRAM", 100.0)]
        t = compute_window_timing(loads, 0)
        assert t.critical_path == 200.0
        assert t.exposed == 200.0
        assert t.mlp == 1.0

    def test_dep_outside_window_ignored(self):
        loads = [(5, 2, "DRAM", 100.0)]
        t = compute_window_timing(loads, window_start=5)
        assert t.critical_path == 100.0

    def test_chain_through_zero_latency_hit(self):
        """An L1-hit producer still propagates its own producer's delay."""
        loads = [
            (0, -1, "DRAM", 100.0),
            (1, 0, "L1", 0.0),
            (2, 1, "DRAM", 100.0),
        ]
        t = compute_window_timing(loads, 0)
        assert t.critical_path == 200.0

    def test_only_dram_counts_toward_bandwidth_bound(self):
        loads = [(0, -1, "L3", 40.0), (1, -1, "DRAM", 100.0)]
        t = compute_window_timing(loads, 0, mshr=1)
        assert t.bandwidth_bound == 100.0
        assert t.total_miss_latency == 140.0

    def test_exposed_by_level_prorates(self):
        loads = [(0, -1, "L3", 50.0), (1, -1, "DRAM", 150.0)]
        t = compute_window_timing(loads, 0, mshr=10)
        by_level = t.exposed_by_level()
        assert abs(sum(by_level.values()) - t.exposed) < 1e-9
        assert by_level["DRAM"] == 3 * by_level["L3"]

    def test_invalid_mshr(self):
        with pytest.raises(ValueError):
            compute_window_timing([], 0, mshr=0)


class TestRobInsensitivity:
    def test_doubling_window_does_not_help_when_mshr_bound(self):
        """The Fig. 3 effect in miniature: once the MSHR bound dominates,
        a larger window processes more misses but exposes proportionally
        more latency — zero speedup."""
        small = [
            compute_window_timing(
                [(i, -1, "DRAM", 100.0) for i in range(20)], 0, mshr=10
            )
            for _ in range(2)
        ]
        big = compute_window_timing(
            [(i, -1, "DRAM", 100.0) for i in range(40)], 0, mshr=10
        )
        assert sum(t.exposed for t in small) == big.exposed

"""Submission client: retry/backoff policy with injected transport."""

from __future__ import annotations

import io
import urllib.error
from email.message import Message

import pytest

from repro.service import client as client_mod
from repro.service.client import SubmitError, content_run_id, submit_sweep

SPEC = {
    "workloads": ["PR"],
    "datasets": ["kron"],
    "setups": ["droplet"],
    "max_refs": 3000,
    "scale_shift": -6,
}


def http_error(code, body=b"{}", retry_after=None):
    headers = Message()
    if retry_after is not None:
        headers["Retry-After"] = str(retry_after)
    return urllib.error.HTTPError(
        "http://x/sweeps", code, "err", headers, io.BytesIO(body)
    )


class Transport:
    """Scripted stand-in for ``client._request``: pops one outcome per call."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = 0

    def __call__(self, url, data=None, timeout=10.0):
        self.calls += 1
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return dict(outcome)


class TestContentRunId:
    def test_stable_and_ignores_run_id(self):
        assert content_run_id(SPEC) == content_run_id(dict(SPEC, run_id="x"))
        assert content_run_id(SPEC).startswith("sub-")

    def test_differs_for_different_specs(self):
        assert content_run_id(SPEC) != content_run_id(
            dict(SPEC, max_refs=9999)
        )


class TestSubmitRetries:
    def test_success_first_try(self, monkeypatch):
        transport = Transport([{"run_id": "r1"}])
        monkeypatch.setattr(client_mod, "_request", transport)
        accepted = submit_sweep("http://x", SPEC, sleep=lambda s: None)
        assert accepted["run_id"] == "r1" and accepted["attempts"] == 1

    def test_429_honors_retry_after_then_succeeds(self, monkeypatch):
        transport = Transport([
            http_error(429, b'{"error": "queue full"}', retry_after=7),
            http_error(429, b'{"error": "queue full"}', retry_after=3),
            {"run_id": "r1"},
        ])
        monkeypatch.setattr(client_mod, "_request", transport)
        slept = []
        accepted = submit_sweep(
            "http://x", SPEC, backoff=0.5, sleep=slept.append,
            rng=lambda: 0.0,
        )
        assert accepted["attempts"] == 3
        assert slept == [7.0, 3.0]  # Retry-After wins over backoff

    def test_exponential_backoff_without_retry_after(self, monkeypatch):
        transport = Transport([
            http_error(503), http_error(503), http_error(503),
            {"run_id": "r1"},
        ])
        monkeypatch.setattr(client_mod, "_request", transport)
        slept = []
        submit_sweep(
            "http://x", SPEC, backoff=0.5, sleep=slept.append,
            rng=lambda: 0.0,
        )
        assert slept == [0.5, 1.0, 2.0]  # backoff * 2^attempt

    def test_backoff_is_capped(self, monkeypatch):
        transport = Transport(
            [http_error(503)] * 5 + [{"run_id": "r1"}]
        )
        monkeypatch.setattr(client_mod, "_request", transport)
        slept = []
        submit_sweep(
            "http://x", SPEC, backoff=4.0, max_backoff=10.0,
            sleep=slept.append, rng=lambda: 0.0,
        )
        assert max(slept) == 10.0

    def test_jitter_is_added(self, monkeypatch):
        transport = Transport([http_error(503), {"run_id": "r1"}])
        monkeypatch.setattr(client_mod, "_request", transport)
        slept = []
        submit_sweep(
            "http://x", SPEC, backoff=1.0, sleep=slept.append,
            rng=lambda: 0.5,
        )
        assert slept == [1.5]  # 1.0 backoff + 0.5 jitter

    def test_connection_errors_are_retryable(self, monkeypatch):
        transport = Transport([
            urllib.error.URLError("connection refused"),
            ConnectionResetError("reset"),
            {"run_id": "r1"},
        ])
        monkeypatch.setattr(client_mod, "_request", transport)
        accepted = submit_sweep("http://x", SPEC, sleep=lambda s: None)
        assert accepted["attempts"] == 3

    def test_400_is_not_retried(self, monkeypatch):
        transport = Transport([
            http_error(400, b'{"error": "unknown workload NOPE"}'),
        ])
        monkeypatch.setattr(client_mod, "_request", transport)
        with pytest.raises(SubmitError) as err:
            submit_sweep("http://x", SPEC, sleep=lambda s: None)
        assert err.value.status == 400
        assert "NOPE" in str(err.value)
        assert transport.calls == 1

    def test_retries_exhausted_raises(self, monkeypatch):
        transport = Transport([http_error(429)] * 3)
        monkeypatch.setattr(client_mod, "_request", transport)
        with pytest.raises(SubmitError) as err:
            submit_sweep(
                "http://x", SPEC, max_attempts=3, sleep=lambda s: None
            )
        assert "3 attempt(s)" in str(err.value)
        assert transport.calls == 3

    def test_run_id_injected_and_stable(self, monkeypatch):
        seen = []

        def capture(url, data=None, timeout=10.0):
            import json

            seen.append(json.loads(data))
            return {"run_id": seen[-1]["run_id"]}

        monkeypatch.setattr(client_mod, "_request", capture)
        first = submit_sweep("http://x", SPEC, sleep=lambda s: None)
        second = submit_sweep("http://x", SPEC, sleep=lambda s: None)
        # Both submissions address the same content-derived run id, so a
        # retry after a lost response is idempotent server-side.
        assert first["run_id"] == second["run_id"] == content_run_id(SPEC)

    def test_log_callback_sees_each_retry(self, monkeypatch):
        transport = Transport([http_error(429), {"run_id": "r1"}])
        monkeypatch.setattr(client_mod, "_request", transport)
        lines = []
        submit_sweep(
            "http://x", SPEC, sleep=lambda s: None, log=lines.append,
            rng=lambda: 0.0,
        )
        assert len(lines) == 1 and "attempt 1/8" in lines[0]

"""Sweep service: spec parsing, dedupe engine, HTTP observability e2e."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.runtime import TraceCache, point_key
from repro.service import ServiceHTTPServer, SweepService, parse_spec
from repro.service.engine import SERVICE_SIDECAR
from repro.telemetry import parse_prom_text, spans

MAX_REFS = 3000
SCALE_SHIFT = -6

SPEC = {
    "workloads": ["PR"],
    "datasets": ["kron"],
    "setups": ["droplet"],
    "max_refs": MAX_REFS,
    "scale_shift": SCALE_SHIFT,
}


def make_service(tmp_path, workers=2):
    return SweepService(
        root=tmp_path / "runs",
        workers=workers,
        trace_cache=TraceCache(tmp_path / "traces"),
    )


def wait_finished(service, run_id, timeout=90.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if service.run_finished(run_id):
            return
        time.sleep(0.05)
    raise AssertionError("run %s did not finish in time" % run_id)


class TestParseSpec:
    def test_defaults_mirror_repro_sweep(self):
        points, options = parse_spec({})
        # Full paper matrix with the "none" baseline prepended per setup
        # list, exactly like the CLI's default sweep.
        labels = [p.label for p in points]
        assert "PR/kron/none" in labels and "PR/kron/droplet" in labels
        assert points[0].max_refs == 150_000
        assert options["run_id"] is None
        assert options["retry"].max_attempts == 3

    def test_explicit_fields(self):
        points, options = parse_spec(
            dict(SPEC, timeout=5, retries=0, run_id="my-run")
        )
        assert [p.label for p in points] == ["PR/kron/none", "PR/kron/droplet"]
        assert all(p.max_refs == MAX_REFS for p in points)
        assert options["run_id"] == "my-run"
        assert options["retry"].max_attempts == 1
        assert options["timeout"] == 5.0

    def test_workload_names_are_case_insensitive(self):
        points, _ = parse_spec(dict(SPEC, workloads=["pr"]))
        assert points[0].workload == "PR"

    @pytest.mark.parametrize(
        "bad",
        [
            {"workloads": ["NOPE"]},
            {"datasets": ["mars"]},
            {"setups": ["warp-drive"]},
            {"max_refs": 0},
            {"max_refs": "many"},
            {"fast_path": "sometimes"},
            {"run_id": "a/b"},
            {"run_id": ""},
            {"mystery_field": 1},
            {"workloads": []},
        ],
    )
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            parse_spec(dict(SPEC, **bad))

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError):
            parse_spec(["not", "a", "dict"])


class TestEngineDedupe:
    def test_identical_points_collapse_to_one_execution(self, tmp_path, monkeypatch):
        """Two runs over the same point key share one (stubbed) execution:
        the second submission joins in flight, and a third — after
        completion — answers instantly from the result cache."""
        from repro.runtime.points import PointResult
        from repro.service import engine as engine_mod

        started = threading.Event()
        release = threading.Event()
        executions = []

        def fake_execute(point, config, cache, memo, return_full, **kwargs):
            executions.append(point.label)
            started.set()
            release.wait(timeout=30)
            return PointResult(
                point=point,
                summary={"cycles": 1},
                wall_time=0.01,
                trace_cache_hit=True,
                replay_tier="vector",
            )

        monkeypatch.setattr(engine_mod, "execute_point", fake_execute)
        service = make_service(tmp_path, workers=1).start()
        spec = dict(SPEC, setups=["droplet"], workloads=["PR"])
        first = service.submit(spec)
        assert started.wait(timeout=10)
        second = service.submit(spec)  # joins the in-flight jobs
        assert service.counters["dedup_hits"] >= 1
        release.set()
        wait_finished(service, first)
        wait_finished(service, second)
        third = service.submit(spec)  # instant: result cache
        wait_finished(service, third, timeout=5)
        # Each unique point key executed exactly once across three runs.
        assert len(executions) == len(set(point_key(p) for p, _ in [
            (p, None) for p in parse_spec(spec)[0]
        ]))
        assert service.counters["cached_answers"] >= 2
        assert service.drain(timeout=10)

    def test_draining_service_rejects_submissions(self, tmp_path):
        service = make_service(tmp_path).start()
        assert service.drain(timeout=10)
        with pytest.raises(RuntimeError):
            service.submit(SPEC)

    def test_run_id_resubmission_idempotent_or_rejected(self, tmp_path, monkeypatch):
        from repro.runtime.points import PointResult
        from repro.service import engine as engine_mod

        release = threading.Event()

        def fake_execute(point, *args, **kwargs):
            release.wait(timeout=30)
            return PointResult(point=point, summary={}, wall_time=0.0)

        monkeypatch.setattr(engine_mod, "execute_point", fake_execute)
        service = make_service(tmp_path, workers=1).start()
        first = service.submit(dict(SPEC, run_id="dup"))
        # Identical spec under the same run id: idempotent resubmission
        # (the client never saw its first accept) returns the same run.
        assert service.submit(dict(SPEC, run_id="dup")) == first
        assert service.counters["idempotent_hits"] == 1
        # A *different* spec under an active run id is a collision.
        with pytest.raises(ValueError):
            service.submit(dict(SPEC, run_id="dup", max_refs=SPEC["max_refs"] + 1))
        release.set()
        assert service.drain(timeout=10)


@pytest.fixture(scope="class")
def live_server(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("service")
    service = make_service(tmp_path)
    server = ServiceHTTPServer(
        service, port=0, access_log=tmp_path / "access.jsonl"
    ).start()
    yield server, service, tmp_path
    server.stop(drain_timeout=30)


def post_json(url, payload, expect_error=False):
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, json.load(resp)
    except urllib.error.HTTPError as exc:
        if not expect_error:
            raise
        return exc.code, json.loads(exc.read() or b"{}")


def get(url, timeout=30):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


class TestHTTPEndToEnd:
    """The acceptance flow: submit → stream → status parity → dedupe."""

    def test_submit_stream_status_and_cached_resubmission(self, live_server):
        server, service, tmp_path = live_server
        url = server.url

        status_code, accepted = post_json(url + "/sweeps", SPEC)
        assert status_code == 202
        run_id = accepted["run_id"]
        assert accepted["status_url"] == "/sweeps/%s" % run_id

        # SSE delivers begin/finish span records while the run executes.
        events = []
        last_id = None
        with urllib.request.urlopen(
            url + accepted["events_url"], timeout=120
        ) as stream:
            for raw in stream:
                line = raw.decode().strip()
                if line.startswith("event: end"):
                    break
                if line.startswith("id: "):
                    last_id = int(line[4:])
                if line.startswith("data: "):
                    events.append(json.loads(line[6:]))
        kinds = {(e.get("k"), e.get("name")) for e in events}
        assert ("M", "sweep.run") in kinds
        assert ("B", "point") in kinds and ("E", "point") in kinds
        assert ("I", "point.final") in kinds
        assert ("F", "sweep.finish") in kinds
        assert last_id is not None and last_id > 0

        # A reconnect with Last-Event-ID resumes past consumed history.
        req = urllib.request.Request(
            url + accepted["events_url"],
            headers={"Last-Event-ID": str(last_id)},
        )
        with urllib.request.urlopen(req, timeout=30) as stream:
            resumed = [raw.decode().strip() for raw in stream]
        assert any(l.startswith("event: end") for l in resumed)
        assert not any(l.startswith("event: span") for l in resumed)

        # GET /sweeps/<id> byte-matches `repro status --json`.
        wait_finished(service, run_id)
        import contextlib
        import io

        from repro.cli import main

        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            assert main(
                ["status", run_id, "--ledger-root", str(tmp_path / "runs"),
                 "--json"]
            ) == 0
        _, http_body = get(url + "/sweeps/" + run_id)
        assert http_body == buffer.getvalue()
        payload = json.loads(http_body)
        assert payload["finished"] is True
        assert payload["mode"] == "service"
        assert payload["states"]["done"] == len(payload["points"])

        # Identical resubmission: all points answered from the result
        # cache — run finishes without any worker touching it.
        status_code, again = post_json(url + "/sweeps", SPEC)
        assert status_code == 202
        rerun = again["run_id"]
        wait_finished(service, rerun, timeout=10)
        _, rerun_body = get(url + "/sweeps/" + rerun)
        rerun_payload = json.loads(rerun_body)
        assert rerun_payload["states"]["restored"] == len(
            rerun_payload["points"]
        )
        sidecar = spans.read_sidecar(
            tmp_path / "runs" / (rerun + ".spans.jsonl")
        )
        worker_spans = [
            r for r in sidecar if r.get("k") == "B" and r.get("name") == "point"
        ]
        assert worker_spans == []  # zero new worker spans

        # /metrics parses as Prometheus text and shows the dedupe.
        _, metrics_text = get(url + "/metrics")
        parsed = parse_prom_text(metrics_text)
        assert parsed["repro_service_dedup_hits_total"] > 0
        assert parsed["repro_service_submissions_total"] >= 2
        assert "repro_service_queue_depth" in parsed
        assert "repro_sweep_restored_points" in parsed
        assert "repro_fastpath_windows_degraded" in parsed
        assert any(key.startswith("repro_service_worker_busy{") for key in parsed)

    def test_bad_spec_is_a_400_with_message(self, live_server):
        server, _, _ = live_server
        code, body = post_json(
            server.url + "/sweeps",
            dict(SPEC, workloads=["NOPE"]),
            expect_error=True,
        )
        assert code == 400
        assert "NOPE" in body["error"]

    def test_unknown_run_is_404(self, live_server):
        server, _, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/sweeps/no-such-run")
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/sweeps/no-such-run/events")
        assert err.value.code == 404

    def test_healthz_reports_pool_liveness(self, live_server):
        server, _, _ = live_server
        code, body = get(server.url + "/healthz")
        assert code == 200
        payload = json.loads(body)
        assert payload["ok"] is True
        assert payload["workers"] == 2

    def test_unknown_endpoint_is_404(self, live_server):
        server, _, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as err:
            get(server.url + "/teapot")
        assert err.value.code == 404


class TestHTTPErrorPaths:
    """Hardened ingestion: structured JSON errors, never tracebacks."""

    def _post_raw(self, server, body: bytes, content_type="application/json",
                  content_length=None):
        import http.client

        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.putrequest("POST", "/sweeps")
            if content_type is not None:
                conn.putheader("Content-Type", content_type)
            conn.putheader(
                "Content-Length",
                str(len(body)) if content_length is None else content_length,
            )
            conn.endheaders()
            conn.send(body)
            resp = conn.getresponse()
            return resp.status, json.loads(resp.read() or b"{}")
        finally:
            conn.close()

    def test_wrong_content_type_is_400(self, live_server):
        server, _, _ = live_server
        code, body = self._post_raw(
            server, json.dumps(SPEC).encode(),
            content_type="application/x-www-form-urlencoded",
        )
        assert code == 400
        assert "Content-Type" in body["error"]

    def test_charset_parameter_is_tolerated(self, live_server):
        server, service, _ = live_server
        code, body = self._post_raw(
            server, json.dumps(SPEC).encode(),
            content_type="application/json; charset=utf-8",
        )
        assert code == 202 and body["run_id"]
        wait_finished(service, body["run_id"])

    def test_missing_content_type_is_tolerated(self, live_server):
        # Bare curl / minimal clients send no Content-Type at all.
        server, service, _ = live_server
        code, body = self._post_raw(
            server, json.dumps(SPEC).encode(), content_type=None
        )
        assert code == 202
        wait_finished(service, body["run_id"])

    def test_malformed_json_is_400(self, live_server):
        server, _, _ = live_server
        code, body = self._post_raw(server, b'{"workloads": [')
        assert code == 400
        assert "JSON" in body["error"]

    def test_non_object_spec_is_400(self, live_server):
        server, _, _ = live_server
        code, body = self._post_raw(server, b'["PR", "BFS"]')
        assert code == 400
        assert "JSON object" in body["error"]

    def test_invalid_content_length_is_400(self, live_server):
        server, _, _ = live_server
        code, body = self._post_raw(server, b"{}", content_length="banana")
        assert code == 400
        assert "Content-Length" in body["error"]

    def test_oversized_body_is_413(self, live_server):
        from repro.service.http import MAX_BODY_BYTES

        server, _, _ = live_server
        blob = b'{"pad": "' + b"x" * MAX_BODY_BYTES + b'"}'
        code, body = self._post_raw(server, blob)
        assert code == 413
        assert body["limit_bytes"] == MAX_BODY_BYTES

    def test_queue_full_is_429_with_retry_after(self, tmp_path, monkeypatch):
        from repro.runtime.points import PointResult
        from repro.service import engine as engine_mod

        gate = threading.Event()

        def fake_execute(point, *args, **kwargs):
            gate.wait(timeout=60)
            return PointResult(point=point, summary={}, wall_time=0.0)

        monkeypatch.setattr(engine_mod, "execute_point", fake_execute)
        service = SweepService(
            root=tmp_path / "runs", workers=1, max_queue=1,
            trace_cache=TraceCache(tmp_path / "traces"),
        )
        server = ServiceHTTPServer(
            service, port=0, access_log=tmp_path / "access.jsonl"
        ).start()
        try:
            code, _ = post_json(server.url + "/sweeps", dict(SPEC, run_id="hog"))
            assert code == 202
            deadline = time.time() + 10
            while service.queue_depth() < 1 and time.time() < deadline:
                time.sleep(0.01)
            overflow = dict(SPEC, max_refs=SPEC["max_refs"] + 1)
            with pytest.raises(urllib.error.HTTPError) as err:
                post_json(server.url + "/sweeps", overflow)
            assert err.value.code == 429
            retry_after = err.value.headers.get("Retry-After")
            assert retry_after is not None and int(retry_after) >= 1
            payload = json.loads(err.value.read() or b"{}")
            assert payload["retry_after"] == int(retry_after)
            # The rejection is visible on /metrics.
            _, metrics_text = get(server.url + "/metrics")
            parsed = parse_prom_text(metrics_text)
            assert parsed["repro_service_rejected_429_total"] == 1
            assert parsed["repro_service_queue_limit"] == 1
        finally:
            gate.set()
            server.stop(drain_timeout=30)

    def test_journal_disk_full_is_503_with_retry_after(
        self, tmp_path, monkeypatch
    ):
        from repro.runtime.faults import ServiceFaultPlan
        from repro.runtime.points import PointResult
        from repro.service import engine as engine_mod

        monkeypatch.setattr(
            engine_mod, "execute_point",
            lambda point, *a, **k: PointResult(
                point=point, summary={}, wall_time=0.0
            ),
        )
        service = SweepService(
            root=tmp_path / "runs", workers=1,
            trace_cache=TraceCache(tmp_path / "traces"),
            faults=ServiceFaultPlan(disk_full=(0,)),
        )
        server = ServiceHTTPServer(
            service, port=0, access_log=tmp_path / "access.jsonl"
        ).start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                post_json(server.url + "/sweeps", SPEC)
            assert err.value.code == 503
            assert err.value.headers.get("Retry-After") is not None
            # Nothing was accepted: the run does not exist.
            assert service.run_ids() == []
            # The client's retry (next ordinal, fault spent) succeeds.
            code, body = post_json(server.url + "/sweeps", SPEC)
            assert code == 202
            wait_finished(service, body["run_id"])
        finally:
            server.stop(drain_timeout=30)


class TestShutdown:
    def test_drain_journals_service_shutdown_span(self, tmp_path):
        service = make_service(tmp_path)
        server = ServiceHTTPServer(
            service, port=0, access_log=tmp_path / "access.jsonl"
        ).start()
        url = server.url
        get(url + "/healthz")
        assert server.stop(drain_timeout=30)
        records = spans.read_sidecar(tmp_path / "runs" / SERVICE_SIDECAR)
        shutdown_end = [
            r for r in records
            if r.get("k") == "E" and r.get("name") == "service.shutdown"
        ]
        assert len(shutdown_end) == 1
        assert shutdown_end[0]["attrs"]["clean"] is True
        # Health reports degraded once draining.
        assert not service.healthy()
        # The structured access log captured the request.
        lines = [
            json.loads(line)
            for line in (tmp_path / "access.jsonl").read_text().splitlines()
        ]
        assert any(
            entry["path"] == "/healthz" and entry["status"] == 200
            for entry in lines
        )
        assert all(
            {"ts", "method", "path", "status", "dur_ms", "client"} <= set(e)
            for e in lines
        )


class TestExplicitPointsSpec:
    """The ``points`` spec form: per-point machine knobs for shard/tuner use."""

    def test_points_spec_builds_sweep_points(self):
        points, _ = parse_spec(
            {
                "points": [
                    {
                        "workload": "pr",
                        "dataset": "kron",
                        "setup": "droplet",
                        "llc_multiplier": 4,
                        "l2_config": [2, 16],
                        "rob_entries": 512,
                        "mrb_entries": 64,
                        "seed": 7,
                    },
                    {"workload": "PR", "dataset": "kron"},
                ],
                "max_refs": MAX_REFS,
                "scale_shift": SCALE_SHIFT,
            }
        )
        first, second = points
        assert first.workload == "PR" and first.setup == "droplet"
        assert first.llc_multiplier == 4 and first.l2_config == (2, 16)
        assert first.rob_entries == 512 and first.mrb_entries == 64
        assert first.seed == 7 and first.max_refs == MAX_REFS
        assert first.scale_shift == SCALE_SHIFT
        assert second.label == "PR/kron/none"

    def test_point_entries_override_the_spec_level_window(self):
        points, _ = parse_spec(
            {
                "points": [
                    {"workload": "PR", "dataset": "kron", "max_refs": 99}
                ],
                "max_refs": MAX_REFS,
            }
        )
        assert points[0].max_refs == 99

    @pytest.mark.parametrize(
        "bad",
        [
            "not-an-object",
            {"workload": "NOPE", "dataset": "kron"},
            {"workload": "PR", "dataset": "mars"},
            {"workload": "PR", "dataset": "kron", "setup": "warp"},
            {"workload": "PR", "dataset": "kron", "max_refs": 0},
            {"workload": "PR", "dataset": "kron", "rob_entries": 0},
            {"workload": "PR", "dataset": "kron", "mrb_entries": -8},
            {"workload": "PR", "dataset": "kron", "llc_multiplier": "big"},
            {"workload": "PR", "dataset": "kron", "l2_config": [8]},
            {"workload": "PR", "dataset": "kron", "l2_config": [0, 8]},
            {"workload": "PR", "dataset": "kron", "turbo": 1},
        ],
    )
    def test_rejects_bad_point_entries(self, bad):
        with pytest.raises(ValueError, match=r"points\[0\]"):
            parse_spec({"points": [bad]})

    def test_points_cannot_be_combined_with_matrix_axes(self):
        with pytest.raises(ValueError, match="combined"):
            parse_spec(
                {
                    "points": [{"workload": "PR", "dataset": "kron"}],
                    "workloads": ["PR"],
                }
            )

    def test_points_must_be_a_non_empty_list(self):
        with pytest.raises(ValueError):
            parse_spec({"points": []})


class TestResultsAndParetoService:
    """``GET /sweeps/<id>/results`` and the ``repro pareto --service`` path."""

    POINTS_SPEC = {
        "points": [
            {"workload": "PR", "dataset": "kron", "setup": "none"},
            {
                "workload": "PR",
                "dataset": "kron",
                "setup": "stream",
                "mrb_entries": 128,
            },
        ],
        "max_refs": MAX_REFS,
        "scale_shift": SCALE_SHIFT,
        "run_id": "explicit",
    }

    def test_results_endpoint_serves_journaled_summaries(self, live_server):
        from repro.service import client

        server, service, _ = live_server
        status_code, _ = post_json(server.url + "/sweeps", self.POINTS_SPEC)
        assert status_code == 202
        wait_finished(service, "explicit")
        code, body = get(server.url + "/sweeps/explicit/results")
        assert code == 200
        payload = json.loads(body)
        points, _ = parse_spec(self.POINTS_SPEC)
        expected = {point_key(p): p.label for p in points}
        entries = payload["points"]
        assert {k: v["label"] for k, v in entries.items()} == expected
        assert all("cycles" in v["summary"] for v in entries.values())
        # The stdlib client sees the identical payload.
        assert client.fetch_results(server.url, "explicit") == payload

    def test_results_for_unknown_run_is_404(self, live_server):
        server, _, _ = live_server
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get(server.url + "/sweeps/ghost/results")
        assert excinfo.value.code == 404

    def test_pareto_search_through_the_service(self, live_server):
        from repro.search import HalvingSchedule, ParetoSearch
        from repro.search.frontier import parse_objectives
        from repro.search.space import parse_space

        server, service, _ = live_server
        search = ParetoSearch(
            workload="PR",
            dataset="kron",
            candidates=parse_space("setup=none,stream;llc=1,2"),
            objectives=parse_objectives("cycles,area_mm2"),
            schedule=HalvingSchedule(
                full_refs=MAX_REFS, rungs=3, eta=2, min_refs=500
            ),
            scale_shift=SCALE_SHIFT,
            service=server.url,
            service_poll=0.1,
        )
        report = search.run()
        assert report["format"] == "repro-pareto-v1"
        assert report["frontier"]
        # Each rung became its own content-addressed service run.
        digest = search.spec_digest()
        for rung in range(3):
            assert service.run_finished("par-%s-r%d" % (digest, rung))
        # Resubmitting the identical search dedupes into the finished
        # runs and reproduces the report byte for byte.
        again = search.run()
        assert json.dumps(again, sort_keys=True) == json.dumps(
            report, sort_keys=True
        )

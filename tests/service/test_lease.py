"""Point leases: acquire/heartbeat/release, takeover, once-markers."""

from __future__ import annotations

from repro.service.lease import LEASE_DIR, LeaseManager


def manager(tmp_path, owner, ttl=30.0):
    return LeaseManager(tmp_path, owner=owner, ttl=ttl)


class TestAcquire:
    def test_vacant_key_is_claimed(self, tmp_path):
        lease = manager(tmp_path, "a:1").acquire("k1")
        assert lease is not None
        assert (lease.owner, lease.epoch, lease.takeover) == ("a:1", 1, False)
        assert (tmp_path / LEASE_DIR / "k1.lease").is_file()

    def test_live_foreign_holder_blocks(self, tmp_path):
        assert manager(tmp_path, "a:1").acquire("k1") is not None
        assert manager(tmp_path, "b:2").acquire("k1") is None

    def test_same_owner_reacquires(self, tmp_path):
        first = manager(tmp_path, "a:1")
        assert first.acquire("k1") is not None
        again = first.acquire("k1")
        assert again is not None and not again.takeover
        assert again.epoch == 2

    def test_stale_lease_is_taken_over_with_bumped_epoch(self, tmp_path):
        holder = manager(tmp_path, "a:1", ttl=0.0)  # instantly stale
        lease = holder.acquire("k1")
        taken = manager(tmp_path, "b:2", ttl=0.0).acquire("k1")
        assert taken is not None and taken.takeover
        assert taken.epoch == lease.epoch + 1
        # The displaced holder notices on its next heartbeat.
        assert holder.heartbeat(lease) is False

    def test_terminal_states_are_never_reacquired(self, tmp_path):
        owner = manager(tmp_path, "a:1", ttl=0.0)
        lease = owner.acquire("k1")
        owner.release(lease, "done")
        assert manager(tmp_path, "b:2", ttl=0.0).acquire("k1") is None
        lease2 = owner.acquire("k2")
        owner.release(lease2, "failed", error_kind="Boom")
        assert manager(tmp_path, "b:2", ttl=0.0).acquire("k2") is None

    def test_released_key_returns_to_pool(self, tmp_path):
        owner = manager(tmp_path, "a:1")
        lease = owner.acquire("k1")
        assert owner.release(lease, "released")
        other = manager(tmp_path, "b:2").acquire("k1")
        assert other is not None and other.epoch == lease.epoch + 1

    def test_torn_lease_file_treated_as_vacant(self, tmp_path):
        mgr = manager(tmp_path, "a:1")
        (tmp_path / LEASE_DIR / "k1.lease").write_text('{"state": "hel')
        assert mgr.acquire("k1") is not None


class TestHeartbeatAndSteal:
    def test_heartbeat_refreshes_a_held_lease(self, tmp_path):
        mgr = manager(tmp_path, "a:1")
        lease = mgr.acquire("k1")
        before = mgr.peek("k1")["beat"]
        assert mgr.heartbeat(lease) is True
        assert mgr.peek("k1")["beat"] >= before

    def test_steal_invalidates_the_holder(self, tmp_path):
        mgr = manager(tmp_path, "a:1")
        lease = mgr.acquire("k1")
        assert mgr.steal("k1", owner="chaos:0") is True
        assert mgr.heartbeat(lease) is False
        assert mgr.release(lease, "done") is False  # loser writes nothing
        record = mgr.peek("k1")
        assert record["owner"] == "chaos:0"
        assert record["epoch"] == lease.epoch + 1

    def test_steal_needs_a_held_lease(self, tmp_path):
        mgr = manager(tmp_path, "a:1")
        assert mgr.steal("nope") is False
        lease = mgr.acquire("k1")
        mgr.release(lease, "done")
        assert mgr.steal("k1") is False


class TestRelease:
    def test_release_merges_extra_fields(self, tmp_path):
        mgr = manager(tmp_path, "a:1")
        lease = mgr.acquire("k1")
        assert mgr.release(lease, "done", extra={"run": "svc-123"})
        record = mgr.peek("k1")
        assert record["state"] == "done"
        assert record["run"] == "svc-123"

    def test_failed_release_records_error_kind(self, tmp_path):
        mgr = manager(tmp_path, "a:1")
        lease = mgr.acquire("k1")
        assert mgr.release(lease, "failed", error_kind="ValueError")
        assert mgr.peek("k1")["error_kind"] == "ValueError"

    def test_peek_on_vacant_key(self, tmp_path):
        assert manager(tmp_path, "a:1").peek("ghost") == {}


class TestOnceMarkers:
    def test_once_elects_exactly_one_writer(self, tmp_path):
        first = manager(tmp_path, "a:1")
        second = manager(tmp_path, "b:2")
        assert first.once("meta-run1") is True
        assert first.once("meta-run1") is False
        assert second.once("meta-run1") is False  # cross-process loser

    def test_once_persists_across_restarts(self, tmp_path):
        assert manager(tmp_path, "a:1").once("finish-run1") is True
        # A "restarted" process (fresh manager, same root) still loses.
        assert manager(tmp_path, "a:1").once("finish-run1") is False

    def test_distinct_names_are_independent(self, tmp_path):
        mgr = manager(tmp_path, "a:1")
        assert mgr.once("meta-r") and mgr.once("finish-r") and mgr.once("jdone-r")

"""Service-level chaos harness: real daemons, real kills, real disks.

Each scenario drives ``repro serve`` subprocesses through the
crash-safety contract the in-process tests pin mechanically:

* ``kill -9`` mid-run, restart, and the recovered run's ``repro status
  --json`` view is identical (modulo wall-clock fields) to an
  uninterrupted run of the same sweep;
* a daemon killed *between* journal accept and enqueue
  (``kill_after_accept`` fault) loses nothing — the client's idempotent
  resubmission lands on the replayed run;
* two daemons sharing a ledger root partition points via leases with no
  double execution, and a killed daemon's in-flight leases are taken
  over by the survivor.

The sweeps use warm trace-cache points sized (~0.5s each) so a kill
reliably lands mid-run and cache-hit attributes match across legs.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro.service.client import fetch_status, submit_sweep, wait_for_run
from repro.telemetry import parse_prom_text, spans

REPO = Path(__file__).resolve().parents[2]

#: ~0.5s per point with a warm trace cache: slow enough to kill mid-run.
CHAOS_SPEC = {
    "workloads": ["PR", "BFS"],
    "datasets": ["kron"],
    "setups": ["stream", "droplet"],
    "max_refs": 150_000,
    "scale_shift": -4,
}
CHAOS_POINTS = 6  # 2 workloads x (none + stream + droplet)

#: Fast cold spec for scenarios where execution time is irrelevant.
SMALL_SPEC = {
    "workloads": ["PR"],
    "datasets": ["kron"],
    "setups": ["droplet"],
    "max_refs": 3000,
    "scale_shift": -6,
}


def service_env(cache_dir) -> dict:
    env = dict(os.environ)
    env["REPRO_TRACE_CACHE"] = str(cache_dir)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["PYTHONUNBUFFERED"] = "1"
    return env


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class Daemon:
    """One ``repro serve`` subprocess with its log captured to a file."""

    def __init__(self, root, port, env, log, extra=()):
        self.port = port
        self.url = "http://127.0.0.1:%d" % port
        self.log = Path(log)
        argv = [
            sys.executable, "-m", "repro.cli", "serve",
            "--ledger-root", str(root), "--host", "127.0.0.1",
            "--port", str(port), *extra,
        ]
        self.proc = subprocess.Popen(
            argv, env=env, stdout=open(self.log, "ab"),
            stderr=subprocess.STDOUT,
        )

    def wait_healthy(self, timeout=30.0) -> "Daemon":
        deadline = time.time() + timeout
        while time.time() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    "daemon exited %s during startup:\n%s"
                    % (self.proc.returncode, self.log.read_text())
                )
            try:
                with urllib.request.urlopen(
                    self.url + "/healthz", timeout=2
                ) as resp:
                    if resp.status == 200:
                        return self
            except OSError:
                time.sleep(0.05)
        raise AssertionError(
            "daemon not healthy in %.0fs:\n%s" % (timeout, self.log.read_text())
        )

    def metrics(self) -> dict:
        with urllib.request.urlopen(self.url + "/metrics", timeout=10) as resp:
            return parse_prom_text(resp.read().decode())

    def sigkill(self) -> None:
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)

    def terminate(self, timeout=30.0) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A trace cache pre-warmed for CHAOS_SPEC (one CLI sweep)."""
    cache = tmp_path_factory.mktemp("chaos-cache")
    runs = tmp_path_factory.mktemp("chaos-warmup")
    subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "sweep",
            "--workloads", "PR", "BFS", "--datasets", "kron",
            "--setups", "stream", "droplet",
            "--max-refs", "150000", "--scale-shift", "-4",
            "--workers", "2", "--ledger-root", str(runs),
            "--run-id", "warmup",
        ],
        env=service_env(cache), check=True, capture_output=True,
        timeout=600,
    )
    return cache


def completed(status: dict) -> int:
    states = status.get("states", {})
    return states.get("done", 0) + states.get("failed", 0) + states.get(
        "restored", 0
    )


def stable_view(status: dict) -> dict:
    """Strip wall-clock and path fields; everything else must match."""
    view = json.loads(json.dumps(status))  # deep copy
    for key in ("eta_s", "ledger", "spans"):
        view.pop(key, None)
    for bucket in ("metrics", "counters"):
        data = view.get(bucket)
        if isinstance(data, dict):
            for volatile in ("elapsed_s", "point_time_s", "utilization"):
                data.pop(volatile, None)
    for point in view.get("points", []):
        point.pop("wall_time", None)
    return view


def final_records(root, run_id):
    records = spans.read_sidecar(Path(root) / ("%s.spans.jsonl" % run_id))
    return [
        r for r in records
        if r.get("k") == "I" and r.get("name") == "point.final"
    ]


class TestSigkillRestart:
    def test_recovered_status_is_identical_to_uninterrupted(
        self, tmp_path, warm_cache
    ):
        env = service_env(warm_cache)
        spec = dict(CHAOS_SPEC, run_id="chaos")

        # Leg 1: the uninterrupted reference run.
        clean_root = tmp_path / "clean"
        clean = Daemon(
            clean_root, free_port(), env, tmp_path / "clean.log",
            extra=("--workers", "2"),
        ).wait_healthy()
        try:
            submit_sweep(clean.url, spec)
            reference = wait_for_run(clean.url, "chaos", poll=0.1, timeout=300)
        finally:
            clean.terminate()
        assert reference["finished"] is True
        assert reference["states"]["done"] == CHAOS_POINTS

        # Leg 2: same sweep, SIGKILL mid-run, restart, zero client action.
        chaos_root = tmp_path / "chaos"
        victim = Daemon(
            chaos_root, free_port(), env, tmp_path / "victim.log",
            extra=("--workers", "2"),
        ).wait_healthy()
        submit_sweep(victim.url, spec)
        killed_mid_run = False
        deadline = time.time() + 300
        while time.time() < deadline:
            status = fetch_status(victim.url, "chaos")
            if status.get("finished"):
                break  # too fast to catch — recovery still exercised below
            if completed(status) >= 1:
                killed_mid_run = True
                break
            time.sleep(0.02)
        victim.sigkill()

        survivor = Daemon(
            chaos_root, free_port(), env, tmp_path / "survivor.log",
            extra=("--workers", "2"),
        ).wait_healthy()
        try:
            recovered = wait_for_run(
                survivor.url, "chaos", poll=0.1, timeout=300
            )
            if killed_mid_run:
                assert survivor.metrics()[
                    "repro_service_journal_replays_total"
                ] >= 1
        finally:
            survivor.terminate()

        # The acceptance criterion: byte-identical stable views.
        assert stable_view(recovered) == stable_view(reference)
        # And exactly one point.final per index — the restart re-settled
        # nothing the dead daemon had already journaled.
        for root, run_dir in ((clean_root, "clean"), (chaos_root, "chaos")):
            finals = final_records(root, "chaos")
            indexes = sorted(r["attrs"]["index"] for r in finals)
            assert indexes == list(range(CHAOS_POINTS)), run_dir


class TestKillAfterAccept:
    def test_accepted_but_not_enqueued_run_survives(self, tmp_path, warm_cache):
        from repro.service.client import SubmitError
        from repro.service.journal import SubmissionJournal

        env = service_env(warm_cache)
        root = tmp_path / "runs"
        port = free_port()
        spec = dict(SMALL_SPEC, run_id="idem")
        faults = ("--faults", "kill_after_accept@0")

        victim = Daemon(
            root, port, env, tmp_path / "victim.log",
            extra=("--workers", "1", *faults),
        ).wait_healthy()
        # The daemon journals the accept, then dies before enqueueing —
        # the client sees a dead connection, never a 202.
        with pytest.raises(SubmitError):
            submit_sweep(victim.url, spec, max_attempts=1)
        victim.proc.wait(timeout=10)
        assert victim.proc.returncode == 1
        entries, _ = SubmissionJournal(root).replay()
        assert [e.run_id for e in entries] == ["idem"]
        assert not entries[0].done

        # Restart with the SAME fault spec: the one-shot trip marker
        # persisted under <root>/faults, so it must not re-fire.
        survivor = Daemon(
            root, port, env, tmp_path / "survivor.log",
            extra=("--workers", "1", *faults),
        ).wait_healthy()
        try:
            accepted = submit_sweep(survivor.url, spec, max_attempts=8)
            assert accepted["run_id"] == "idem"
            final = wait_for_run(survivor.url, "idem", poll=0.1, timeout=120)
            assert final["finished"] is True
            assert final["states"]["done"] == final["total"]
            metrics = survivor.metrics()
            assert metrics["repro_service_journal_replays_total"] >= 1
            assert metrics["repro_service_idempotent_hits_total"] >= 1
        finally:
            survivor.terminate()


class TestMultiHost:
    def test_two_daemons_partition_points_without_double_execution(
        self, tmp_path, warm_cache
    ):
        from repro.runtime.ledger import point_key
        from repro.service.engine import parse_spec
        from repro.service.lease import LEASE_DIR

        env = service_env(warm_cache)
        root = tmp_path / "runs"
        spec = dict(CHAOS_SPEC, run_id="multi")
        first = Daemon(
            root, free_port(), env, tmp_path / "first.log",
            extra=("--workers", "1", "--lease-ttl", "5"),
        ).wait_healthy()
        second = Daemon(
            root, free_port(), env, tmp_path / "second.log",
            extra=("--join", str(root), "--workers", "2", "--lease-ttl", "5"),
        ).wait_healthy()
        try:
            submit_sweep(first.url, spec)
            final = wait_for_run(first.url, "multi", poll=0.1, timeout=300)
            assert final["states"]["done"] == CHAOS_POINTS
            # The joined daemon discovered the run from the shared
            # journal and converges on the same finished view.
            deadline = time.time() + 30
            while time.time() < deadline:
                if second.metrics().get(
                    "repro_service_journal_adoptions_total", 0
                ) >= 1:
                    break
                time.sleep(0.1)
            assert second.metrics()[
                "repro_service_journal_adoptions_total"
            ] >= 1
            peer_view = fetch_status(second.url, "multi")
            assert peer_view["finished"] is True
        finally:
            first.terminate()
            second.terminate()

        # Span-sidecar accounting: every point settled exactly once,
        # with no superseded (stolen mid-run) executions.
        finals = final_records(root, "multi")
        indexes = sorted(r["attrs"]["index"] for r in finals)
        assert indexes == list(range(CHAOS_POINTS))
        records = spans.read_sidecar(root / "multi.spans.jsonl")
        ok_ends = [
            r for r in records
            if r.get("k") == "E" and r.get("name") == "point"
            and (r.get("attrs") or {}).get("status") == "ok"
        ]
        assert len(ok_ends) == CHAOS_POINTS
        assert not any(
            (r.get("attrs") or {}).get("status") == "superseded"
            for r in records if r.get("k") == "E"
        )
        # Every point's lease settled as done, attributed to the run,
        # and the work was actually partitioned across both daemons.
        points, _ = parse_spec(spec)
        owners = set()
        for point in points:
            lease = json.loads(
                (root / LEASE_DIR / (point_key(point) + ".lease")).read_text()
            )
            assert lease["state"] == "done"
            assert lease["run"] == "multi"
            owners.add(lease["owner"])
        assert len(owners) >= 2, owners

    def test_survivor_takes_over_a_killed_daemons_leases(
        self, tmp_path, warm_cache
    ):
        env = service_env(warm_cache)
        root = tmp_path / "runs"
        spec = dict(CHAOS_SPEC, run_id="takeover")
        victim = Daemon(
            root, free_port(), env, tmp_path / "victim.log",
            extra=("--workers", "2", "--lease-ttl", "2"),
        ).wait_healthy()
        survivor = Daemon(
            root, free_port(), env, tmp_path / "survivor.log",
            extra=("--join", str(root), "--workers", "1", "--lease-ttl", "2"),
        ).wait_healthy()
        try:
            submit_sweep(victim.url, spec)
            # Kill as soon as the victim holds work in flight: those
            # leases go stale and must be taken over.
            deadline = time.time() + 120
            while time.time() < deadline:
                if victim.metrics().get("repro_service_inflight", 0) >= 1:
                    break
                time.sleep(0.02)
            victim.sigkill()

            final = wait_for_run(
                survivor.url, "takeover", poll=0.2, timeout=300
            )
            assert final["finished"] is True
            assert final["states"]["done"] == CHAOS_POINTS
            assert survivor.metrics()[
                "repro_service_lease_takeovers_total"
            ] >= 1
        finally:
            survivor.terminate()
            victim.terminate()
        finals = final_records(root, "takeover")
        indexes = sorted(r["attrs"]["index"] for r in finals)
        assert indexes == list(range(CHAOS_POINTS))

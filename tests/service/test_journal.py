"""Submission journal: durability, tolerant replay, fault hooks."""

from __future__ import annotations

import errno
import json

import pytest

from repro.runtime.faults import ServiceFaultPlan
from repro.service.journal import (
    JOURNAL_FORMAT,
    SubmissionJournal,
    spec_digest,
)

SPEC = {
    "workloads": ["PR"],
    "datasets": ["kron"],
    "setups": ["droplet"],
    "max_refs": 3000,
    "scale_shift": -6,
}


class TestSpecDigest:
    def test_ignores_run_id(self):
        assert spec_digest(SPEC) == spec_digest(dict(SPEC, run_id="abc"))
        assert spec_digest(dict(SPEC, run_id="a")) == spec_digest(
            dict(SPEC, run_id="b")
        )

    def test_differs_for_different_specs(self):
        assert spec_digest(SPEC) != spec_digest(dict(SPEC, max_refs=3001))

    def test_key_order_is_irrelevant(self):
        reordered = dict(reversed(list(SPEC.items())))
        assert spec_digest(SPEC) == spec_digest(reordered)


class TestReplay:
    def test_empty_journal(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        assert not journal.exists()
        entries, done = journal.replay()
        assert entries == [] and done == set()
        assert journal.submits == 0

    def test_round_trip_preserves_spec_verbatim(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        journal.submit("run-a", dict(SPEC, run_id="run-a"))
        entries, done = SubmissionJournal(tmp_path).replay()
        assert [e.run_id for e in entries] == ["run-a"]
        assert entries[0].spec == dict(SPEC, run_id="run-a")
        assert entries[0].digest == spec_digest(SPEC)
        assert entries[0].submitted_at > 0
        assert not entries[0].done and done == set()

    def test_header_written_once(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        journal.submit("a", SPEC)
        journal.submit("b", SPEC)
        records = journal.records()
        headers = [r for r in records if r.get("kind") == "header"]
        assert len(headers) == 1
        assert headers[0]["format"] == JOURNAL_FORMAT
        assert records[0] is headers[0]

    def test_done_marks_entry(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        journal.submit("a", SPEC)
        journal.submit("b", SPEC)
        journal.done("a")
        entries, done = SubmissionJournal(tmp_path).replay()
        flags = {e.run_id: e.done for e in entries}
        assert flags == {"a": True, "b": False}
        assert done == {"a"}

    def test_duplicate_run_ids_collapse_to_first(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        journal.submit("dup", dict(SPEC, max_refs=111))
        journal.submit("dup", dict(SPEC, max_refs=222))
        entries, _ = SubmissionJournal(tmp_path).replay()
        assert len(entries) == 1
        assert entries[0].spec["max_refs"] == 111  # first submit wins
        assert entries[0].duplicates == 1

    def test_truncated_last_record_is_skipped(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        journal.submit("a", SPEC)
        journal.submit("b", SPEC)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"kind":"submit","run_id":"torn","sp')  # no newline
        fresh = SubmissionJournal(tmp_path)
        entries, _ = fresh.replay()
        assert [e.run_id for e in entries] == ["a", "b"]
        # The torn line does not poison later appends: a new submit
        # starts on its own line (the torn fragment merges into it and
        # both parse as garbage at most once).
        fresh.submit("c", SPEC)
        ids = [e.run_id for e in SubmissionJournal(tmp_path).replay()[0]]
        assert "a" in ids and "b" in ids

    def test_replay_primes_submit_ordinals(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        journal.submit("a", SPEC)
        journal.submit("b", SPEC)
        fresh = SubmissionJournal(tmp_path)
        fresh.replay()
        assert fresh.submits == 2

    def test_non_submit_garbage_records_ignored(self, tmp_path):
        journal = SubmissionJournal(tmp_path)
        journal.submit("a", SPEC)
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps({"kind": "submit", "run_id": 7}) + "\n")
            handle.write(json.dumps({"kind": "mystery"}) + "\n")
            handle.write(json.dumps(["not", "a", "dict"]) + "\n")
        entries, _ = SubmissionJournal(tmp_path).replay()
        assert [e.run_id for e in entries] == ["a"]


class TestFaultHooks:
    def test_disk_full_raises_without_writing(self, tmp_path):
        plan = ServiceFaultPlan(disk_full=(0,))
        journal = SubmissionJournal(tmp_path, faults=plan)
        with pytest.raises(OSError) as err:
            journal.submit("a", SPEC)
        assert err.value.errno == errno.ENOSPC
        assert not journal.exists()  # nothing accepted, nothing journaled
        # The next submission ordinal is past the armed fault.
        journal.submit("b", SPEC)
        assert [e.run_id for e in journal.replay()[0]] == ["b"]

    def test_disk_full_is_one_shot_with_trip_dir(self, tmp_path):
        plan = ServiceFaultPlan(
            disk_full=(0,), trip_dir=str(tmp_path / "faults")
        )
        journal = SubmissionJournal(tmp_path, faults=plan)
        with pytest.raises(OSError):
            journal.submit("a", SPEC)
        assert plan.fired("disk_full", 0)
        # A restarted journal (fresh ordinals) does not re-fire ordinal 0.
        retry = SubmissionJournal(tmp_path, faults=plan)
        retry.submit("a", SPEC)
        assert [e.run_id for e in retry.replay()[0]] == ["a"]

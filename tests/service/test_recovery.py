"""Engine crash recovery, deadlines, and admission control (in-process).

The subprocess chaos harness (``test_chaos.py``) proves the same
invariants against real daemons; these tests pin the engine-level
mechanics deterministically with a stubbed executor.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import TraceCache, point_key
from repro.runtime.ledger import RunLedger
from repro.runtime.points import PointResult
from repro.service import SweepService, parse_spec
from repro.service.engine import DEADLINE_KIND, QueueFull
from repro.service.journal import SubmissionJournal
from repro.service.lease import LeaseManager
from repro.telemetry import spans

SPEC = {
    "workloads": ["PR"],
    "datasets": ["kron"],
    "setups": ["droplet"],
    "max_refs": 3000,
    "scale_shift": -6,
}


def make_service(tmp_path, workers=1, **kwargs):
    return SweepService(
        root=tmp_path / "runs",
        workers=workers,
        trace_cache=TraceCache(tmp_path / "traces"),
        **kwargs,
    )


def fake_result(point):
    return PointResult(
        point=point,
        summary={"cycles": 1},
        wall_time=0.01,
        trace_cache_hit=True,
        replay_tier="vector",
    )


def stub_executor(monkeypatch, executed=None, gate=None):
    from repro.service import engine as engine_mod

    def fake_execute(point, *args, **kwargs):
        if executed is not None:
            executed.append(point.label)
        if gate is not None:
            gate.wait(timeout=60)
        return fake_result(point)

    monkeypatch.setattr(engine_mod, "execute_point", fake_execute)


def wait_finished(service, run_id, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if service.run_finished(run_id):
            return
        time.sleep(0.02)
    raise AssertionError("run %s did not finish in time" % run_id)


def journal_spec(run_id):
    return dict(SPEC, run_id=run_id)


class TestJournalReplay:
    def test_replay_executes_a_pending_run(self, tmp_path, monkeypatch):
        """A journaled-but-never-enqueued run (killed between accept and
        enqueue) executes to completion on restart with no client action."""
        executed = []
        stub_executor(monkeypatch, executed)
        SubmissionJournal(tmp_path / "runs").submit(
            "crashed", journal_spec("crashed")
        )
        service = make_service(tmp_path).start()
        wait_finished(service, "crashed")
        assert service.counters["journal_replays"] == 1
        assert sorted(executed) == ["PR/kron/droplet", "PR/kron/none"]
        # Completion is journaled: a second restart has nothing to do.
        entries, _ = SubmissionJournal(tmp_path / "runs").replay()
        assert [e.done for e in entries] == [True]
        assert service.drain(timeout=10)

    def test_replay_adopts_settled_points_silently(self, tmp_path, monkeypatch):
        """Points the dead process already journaled are adopted — no new
        writes — and only the remainder re-executes."""
        from repro.service.engine import RunHandle

        root = tmp_path / "runs"
        points, _ = parse_spec(SPEC)
        SubmissionJournal(root).submit("crashed", journal_spec("crashed"))
        # The pre-crash process settled point 0 (ledger + point.final +
        # sweep.run meta) and died before point 1.
        pre = RunHandle(
            "crashed", root, points, workers=1, leases=LeaseManager(root)
        )
        pre.settle(0, points[0], fake_result(points[0]), restored=False)

        executed = []
        stub_executor(monkeypatch, executed)
        service = make_service(tmp_path).start()
        wait_finished(service, "crashed")
        assert executed == ["PR/kron/droplet"]  # point 0 never re-ran
        assert service.counters["journal_replays"] == 1

        records = spans.read_sidecar(root / "crashed.spans.jsonl")
        metas = [r for r in records
                 if r.get("k") == "M" and r.get("name") == "sweep.run"]
        finals = [r for r in records
                  if r.get("k") == "I" and r.get("name") == "point.final"]
        finishes = [r for r in records
                    if r.get("k") == "F" and r.get("name") == "sweep.finish"]
        assert len(metas) == 1  # once-marker kept the restart from rewriting
        assert sorted(f["attrs"]["index"] for f in finals) == [0, 1]
        assert len(finishes) == 1
        # Adopted results seed the shared cache: a resubmission of the
        # same sweep restores instantly.
        rerun = service.submit(dict(SPEC, run_id="again"))
        wait_finished(service, rerun, timeout=10)
        assert service.counters["cached_answers"] >= 1
        assert service.drain(timeout=10)

    def test_replay_skips_completed_runs(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        journal = SubmissionJournal(tmp_path / "runs")
        journal.submit("finished", journal_spec("finished"))
        journal.done("finished")
        service = make_service(tmp_path).start()
        assert service.counters["journal_replays"] == 0
        assert service.run_finished("finished") is None  # not re-opened
        assert service.drain(timeout=10)

    def test_ledger_ahead_of_journal_reconstructs_the_final(
        self, tmp_path, monkeypatch
    ):
        """Killed between the ledger append and the point.final: recovery
        reconstructs the missing final from the ledger record."""
        root = tmp_path / "runs"
        points, _ = parse_spec(SPEC)
        SubmissionJournal(root).submit("crashed", journal_spec("crashed"))
        ledger = RunLedger("crashed", root=root)
        ledger.open()
        ledger.record(points[0], fake_result(points[0]))

        executed = []
        stub_executor(monkeypatch, executed)
        service = make_service(tmp_path).start()
        wait_finished(service, "crashed")
        assert executed == ["PR/kron/droplet"]
        records = spans.read_sidecar(root / "crashed.spans.jsonl")
        finals = {
            r["attrs"]["index"]: r["attrs"] for r in records
            if r.get("k") == "I" and r.get("name") == "point.final"
        }
        assert sorted(finals) == [0, 1]
        assert finals[0]["ok"] is True and finals[0]["restored"] is False
        assert service.drain(timeout=10)

    def test_replay_error_spec_is_skipped_not_fatal(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        journal = SubmissionJournal(tmp_path / "runs")
        journal.submit("bad", {"workloads": ["NOPE"], "run_id": "bad"})
        journal.submit("good", journal_spec("good"))
        service = make_service(tmp_path).start()
        wait_finished(service, "good")
        assert service.counters["journal_replays"] == 1
        assert service.run_finished("bad") is None
        events = spans.read_sidecar(tmp_path / "runs" / "service.spans.jsonl")
        assert any(r.get("name") == "service.replay_error" for r in events)
        assert service.drain(timeout=10)


class TestDeadlines:
    def test_expired_sweep_fails_unsettled_points(self, tmp_path, monkeypatch):
        gate = threading.Event()
        stub_executor(monkeypatch, gate=gate)
        # lease_ttl 0.9 -> housekeeper ticks every 0.3s.
        service = make_service(tmp_path, lease_ttl=0.9).start()
        run_id = service.submit(dict(SPEC, deadline=0.3, run_id="doomed"))
        wait_finished(service, run_id, timeout=15)
        assert service.counters["deadline_exceeded"] >= 1
        records = spans.read_sidecar(tmp_path / "runs" / "doomed.spans.jsonl")
        kinds = [
            r["attrs"].get("error_kind") for r in records
            if r.get("k") == "I" and r.get("name") == "point.final"
        ]
        assert DEADLINE_KIND in kinds
        gate.set()
        assert service.drain(timeout=10)

    def test_unexpired_sweep_is_untouched(self, tmp_path, monkeypatch):
        stub_executor(monkeypatch)
        service = make_service(tmp_path, lease_ttl=0.9).start()
        run_id = service.submit(dict(SPEC, deadline=60.0))
        wait_finished(service, run_id)
        assert service.counters["deadline_exceeded"] == 0
        assert service.drain(timeout=10)


class TestAdmissionControl:
    def test_queue_overflow_raises_queue_full(self, tmp_path, monkeypatch):
        gate = threading.Event()
        stub_executor(monkeypatch, gate=gate)
        service = make_service(tmp_path, workers=1, max_queue=1).start()
        service.submit(dict(SPEC, run_id="hog"))  # 2 points: 1 runs, 1 queues
        deadline = time.time() + 10
        while service.queue_depth() < 1 and time.time() < deadline:
            time.sleep(0.01)
        with pytest.raises(QueueFull) as err:
            service.submit(dict(SPEC, max_refs=SPEC["max_refs"] + 1))
        assert err.value.retry_after >= 1
        assert service.counters["rejected_429"] == 1
        # The rejected submission left nothing behind: no run, no journal
        # entry, and the queue is unchanged.
        assert len(service.run_ids()) == 1
        entries, _ = SubmissionJournal(tmp_path / "runs").replay()
        assert [e.run_id for e in entries] == ["hog"]
        gate.set()
        wait_finished(service, "hog")
        assert service.drain(timeout=10)

    def test_retry_after_scales_with_observed_exec_time(
        self, tmp_path, monkeypatch
    ):
        gate = threading.Event()
        stub_executor(monkeypatch, gate=gate)
        service = make_service(tmp_path, workers=1, max_queue=1).start()
        service.submit(dict(SPEC, run_id="hog"))
        deadline = time.time() + 10
        while service.queue_depth() < 1 and time.time() < deadline:
            time.sleep(0.01)
        with pytest.raises(QueueFull) as err:
            service.submit(dict(SPEC, max_refs=SPEC["max_refs"] + 1))
        assert 1 <= err.value.retry_after <= 60
        gate.set()
        assert service.drain(timeout=10)


class TestLeaseIntegration:
    def test_stolen_lease_discards_the_result(self, tmp_path, monkeypatch):
        """A lease_steal fault mid-execution: the victim's result is
        discarded (leases_lost), the job re-runs under the new epoch."""
        from repro.runtime.faults import ServiceFaultPlan

        executed = []
        stub_executor(monkeypatch, executed)
        service = make_service(
            tmp_path, workers=1, lease_ttl=1.0,
            faults=ServiceFaultPlan(lease_steal=(0,)),
        ).start()
        run_id = service.submit(dict(SPEC, setups=["droplet"]))
        wait_finished(service, run_id, timeout=30)
        assert service.counters["leases_lost"] >= 1
        assert service.counters["lease_takeovers"] >= 1  # chaos owner went stale
        # The stolen point executed at least twice (victim + retaker)
        # but settled exactly once per index.
        assert len(executed) >= 3  # 2 points + at least one re-run
        records = spans.read_sidecar(
            tmp_path / "runs" / ("%s.spans.jsonl" % run_id)
        )
        finals = [
            r["attrs"]["index"] for r in records
            if r.get("k") == "I" and r.get("name") == "point.final"
        ]
        assert sorted(finals) == [0, 1]
        superseded = [
            r for r in records
            if r.get("k") == "E" and (r.get("attrs") or {}).get("status")
            == "superseded"
        ]
        assert len(superseded) >= 1
        assert service.drain(timeout=10)

    def test_peer_settled_lease_is_adopted(self, tmp_path, monkeypatch):
        """A point whose lease a 'peer' already settled is answered from
        the peer's run ledger instead of executing."""
        root = tmp_path / "runs"
        points, _ = parse_spec(dict(SPEC, setups=["droplet"]))
        # Fake peer: executed point 0 under run "peer", settled its lease.
        peer_ledger = RunLedger("peer", root=root)
        peer_ledger.open()
        peer_ledger.record(points[0], fake_result(points[0]))
        peer_leases = LeaseManager(root, owner="peer:1")
        lease = peer_leases.acquire(point_key(points[0]))
        peer_leases.release(lease, "done", extra={"run": "peer"})

        executed = []
        stub_executor(monkeypatch, executed)
        service = make_service(tmp_path, workers=1).start()
        run_id = service.submit(dict(SPEC, setups=["droplet"]))
        wait_finished(service, run_id, timeout=30)
        assert executed == ["PR/kron/droplet"]  # point 0 came from the peer
        assert service.counters["remote_settled"] >= 1
        status_finals = spans.read_sidecar(
            root / ("%s.spans.jsonl" % run_id)
        )
        adopted = {
            r["attrs"]["index"]: r["attrs"] for r in status_finals
            if r.get("k") == "I" and r.get("name") == "point.final"
        }
        assert adopted[0]["restored"] is True
        assert service.drain(timeout=10)

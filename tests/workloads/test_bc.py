"""Betweenness Centrality correctness tests."""

import numpy as np
import pytest

from repro.workloads import BetweennessCentrality


class TestCorrectness:
    def test_traced_matches_reference(self, small_kron):
        bc = BetweennessCentrality()
        ref = bc.reference(small_kron, num_sources=1)
        run = bc.run(small_kron, max_refs=None, num_sources=1)
        assert run.completed
        assert np.allclose(run.result, ref)

    def test_matches_networkx_single_source(self, tiny_graph):
        nx = pytest.importorskip("networkx")
        bc = BetweennessCentrality()
        # Use the same source the workload picks.
        source = bc._sources(tiny_graph, 1)[0]
        ours = bc.reference(tiny_graph, num_sources=1)
        g = nx.DiGraph(list(tiny_graph.edges()))
        theirs = nx.betweenness_centrality_subset(
            g, sources=[source], targets=list(g.nodes), normalized=False
        )
        expected = np.array([theirs[v] for v in range(tiny_graph.num_vertices)])
        assert np.allclose(ours, expected)

    def test_path_graph_interior_vertices_highest(self):
        from repro.graph import build_csr

        # Path 0-1-2-3-4 (both directions): from source 0, vertex 1..3
        # lie on all paths outward.
        edges = []
        for i in range(4):
            edges += [(i, i + 1), (i + 1, i)]
        g = build_csr(5, np.array(edges))
        bc = BetweennessCentrality()
        scores = bc.reference(g, num_sources=1)
        source = bc._sources(g, 1)[0]
        assert scores[source] == 0.0

    def test_multiple_sources_accumulate(self, tiny_graph):
        bc = BetweennessCentrality()
        one = bc.reference(tiny_graph, num_sources=1)
        two = bc.reference(tiny_graph, num_sources=2)
        assert two.sum() >= one.sum()

    def test_nonnegative(self, small_urand):
        scores = BetweennessCentrality().reference(small_urand, num_sources=2)
        assert (scores >= 0).all()

"""Connected Components correctness tests."""

import numpy as np
import pytest

from repro.trace import NO_DEP, DataType
from repro.workloads import ConnectedComponents


class TestCorrectness:
    def test_two_components(self, two_component_graph):
        cc = ConnectedComponents()
        run = cc.run(two_component_graph, max_refs=None)
        assert run.completed
        assert list(run.result) == [0, 0, 0, 3, 3, 5]

    def test_traced_matches_scipy(self, small_kron):
        cc = ConnectedComponents()
        ref = cc.reference(small_kron)
        run = cc.run(small_kron, max_refs=None)
        assert np.array_equal(run.result, ref)

    def test_matches_networkx(self, tiny_graph):
        nx = pytest.importorskip("networkx")
        g = nx.Graph(list(tiny_graph.edges()))
        comps = list(nx.connected_components(g))
        ours = ConnectedComponents().reference(tiny_graph)
        for comp in comps:
            labels = {ours[v] for v in comp}
            assert len(labels) == 1
            assert labels == {min(comp)}

    def test_single_component_road(self, small_road):
        run = ConnectedComponents().run(small_road, max_refs=None)
        assert (run.result == 0).all()

    def test_labels_are_component_minima(self, small_urand):
        cc = ConnectedComponents()
        labels = cc.reference(small_urand)
        # Every label must label itself.
        assert (labels[labels] == labels).all()


class TestTraceShape:
    def test_pointer_jumping_chains(self, small_kron):
        """The compression sweep creates property→property load chains."""
        run = ConnectedComponents().run(small_kron, max_refs=None)
        t = run.trace
        chained_prop = 0
        for i in range(len(t)):
            d = int(t.dep[i])
            if (
                d != NO_DEP
                and t.kind[i] == int(DataType.PROPERTY)
                and t.kind[d] == int(DataType.PROPERTY)
            ):
                chained_prop += 1
        assert chained_prop > 0

    def test_sequential_structure_streaming(self, tiny_graph):
        run = ConnectedComponents().run(tiny_graph, max_refs=None)
        t = run.trace
        struct_addrs = t.addr[t.kind == int(DataType.STRUCTURE)]
        # Each hooking sweep walks the whole structure array in order.
        per_sweep = tiny_graph.num_edges
        first_sweep = struct_addrs[:per_sweep]
        assert (np.diff(first_sweep) == 4).all()

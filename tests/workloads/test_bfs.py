"""BFS correctness and trace-shape tests."""

import numpy as np
import pytest

from repro.trace import DataType
from repro.workloads import BFS, default_source


def parent_depths(graph, parent, source):
    """Depth of each reached vertex implied by the parent array."""
    n = graph.num_vertices
    depth = np.full(n, -1)
    depth[source] = 0
    changed = True
    while changed:
        changed = False
        for v in range(n):
            if depth[v] == -1 and parent[v] != -1 and depth[parent[v]] != -1:
                depth[v] = depth[parent[v]] + 1
                changed = True
    return depth


class TestCorrectness:
    def test_reference_matches_networkx_levels(self, tiny_graph):
        nx = pytest.importorskip("networkx")
        source = 0
        parent = BFS().reference(tiny_graph, source=source)
        g = nx.Graph(list(tiny_graph.edges()))
        nx_depth = nx.single_source_shortest_path_length(g, source)
        depth = parent_depths(tiny_graph, parent, source)
        for v, d in nx_depth.items():
            assert depth[v] == d

    def test_traced_reaches_same_vertices(self, small_kron):
        bfs = BFS()
        src = default_source(small_kron)
        ref = bfs.reference(small_kron, source=src)
        run = bfs.run(small_kron, max_refs=None, source=src)
        assert run.completed
        assert ((run.result != -1) == (ref != -1)).all()

    def test_traced_parents_are_valid_edges(self, tiny_graph):
        run = BFS().run(tiny_graph, max_refs=None, source=0)
        parent = run.result
        for v in range(tiny_graph.num_vertices):
            if parent[v] != -1 and parent[v] != v:
                assert v in tiny_graph.neighbors_of(parent[v])

    def test_traced_depths_are_shortest(self, small_road):
        bfs = BFS()
        src = default_source(small_road)
        run = bfs.run(small_road, max_refs=None, source=src)
        ref = bfs.reference(small_road, source=src)
        ours = parent_depths(small_road, run.result, src)
        theirs = parent_depths(small_road, ref, src)
        assert (ours == theirs).all()

    def test_unreached_marked(self, two_component_graph):
        parent = BFS().reference(two_component_graph, source=0)
        assert parent[3] == -1 and parent[4] == -1 and parent[5] == -1


class TestDefaultSource:
    def test_deterministic(self, small_kron):
        assert default_source(small_kron) == default_source(small_kron)

    def test_varies_with_seed(self, small_kron):
        sources = {default_source(small_kron, seed=k) for k in range(8)}
        assert len(sources) > 1

    def test_nonzero_degree(self, small_kron):
        assert small_kron.degree(default_source(small_kron)) > 0

    def test_empty_graph_rejected(self):
        from repro.graph import build_csr

        g = build_csr(3, np.empty((0, 2)))
        with pytest.raises(ValueError):
            default_source(g)


class TestTraceShape:
    def test_uses_worklist_intermediate(self, tiny_graph):
        run = BFS().run(tiny_graph, max_refs=None, source=0)
        t = run.trace
        kinds = set(t.kind.tolist())
        assert int(DataType.INTERMEDIATE) in kinds
        assert int(DataType.STRUCTURE) in kinds
        assert int(DataType.PROPERTY) in kinds

    def test_property_loads_follow_structure(self, tiny_graph):
        run = BFS().run(tiny_graph, max_refs=None, source=0)
        t = run.trace
        prop = run.layout.properties["parent"]
        deps = [
            int(t.dep[i])
            for i in range(len(t))
            if t.is_load[i] and prop.contains(int(t.addr[i])) and t.dep[i] >= 0
        ]
        assert deps
        assert all(t.kind[d] == int(DataType.STRUCTURE) for d in deps)


class TestDirectionOptimizing:
    """The GAP-style hybrid BFS (bottom-up sweeps for large frontiers).

    Bottom-up parent selection needs undirected reachability, so these
    tests use symmetric graphs only.
    """

    def test_same_reachability_and_depths(self, small_road):
        bfs = BFS()
        src = default_source(small_road)
        td = bfs.run(small_road, max_refs=None, source=src)
        do = bfs.run(
            small_road, max_refs=None, source=src, direction_optimizing=True
        )
        assert ((td.result != -1) == (do.result != -1)).all()
        td_depth = parent_depths(small_road, td.result, src)
        do_depth = parent_depths(small_road, do.result, src)
        assert (td_depth == do_depth).all()

    def test_parents_are_valid_edges(self, tiny_graph):
        run = BFS().run(
            tiny_graph, max_refs=None, source=0, direction_optimizing=True, alpha=2
        )
        parent = run.result
        for v in range(tiny_graph.num_vertices):
            if parent[v] != -1 and parent[v] != v:
                # Symmetric graph: the reverse edge exists as well.
                assert v in tiny_graph.neighbors_of(parent[v])

    def test_bottom_up_streams_structure_sequentially(self, small_road):
        """With a huge frontier the sweep touches the CSR array in order —
        the all-active access pattern the paper's GAP binaries exhibit."""
        import numpy as np

        bfs = BFS()
        src = default_source(small_road)
        do = bfs.run(
            small_road, max_refs=None, source=src, direction_optimizing=True,
            alpha=24,  # mesh wavefronts are narrow; force the switch
        )
        t = do.trace
        struct_addrs = t.addr[t.kind == 0]
        forward_steps = (np.diff(struct_addrs) > 0).mean()
        # Mostly ascending (sequential sweeps dominate once bottom-up kicks in).
        assert forward_steps > 0.6

    def test_front_tags_traced_as_property(self, small_road):
        bfs = BFS()
        run = bfs.run(
            small_road, max_refs=None, direction_optimizing=True, alpha=24
        )
        front = run.layout.properties["front"]
        t = run.trace
        touched = any(
            front.contains(int(a))
            for a in t.addr[t.kind == 1][:50_000]
        )
        assert touched

    def test_gathered_properties_include_front(self):
        assert BFS().gathered_properties == ("parent", "front")

"""PageRank correctness and trace-shape tests."""

import numpy as np
import pytest

from repro.trace import NO_DEP, DataType
from repro.workloads import PageRank


class TestCorrectness:
    def test_traced_matches_reference(self, small_kron):
        pr = PageRank()
        ref = pr.reference(small_kron, iterations=3)
        run = pr.run(small_kron, max_refs=None, iterations=3)
        assert run.completed
        assert np.allclose(run.result, ref)

    def test_matches_networkx_on_symmetric_graph(self, tiny_graph):
        nx = pytest.importorskip("networkx")
        pr = PageRank()
        ours = pr.reference(tiny_graph, damping=0.85, iterations=60)
        g = nx.DiGraph(list(tiny_graph.edges()))
        theirs = nx.pagerank(g, alpha=0.85, tol=1e-12, max_iter=1000)
        expected = np.array([theirs[v] for v in range(tiny_graph.num_vertices)])
        assert np.allclose(ours, expected, atol=1e-6)

    def test_scores_conserved_on_symmetric_graph(self, tiny_graph):
        scores = PageRank().reference(tiny_graph, iterations=60)
        assert abs(scores.sum() - 1.0) < 1e-6

    def test_scores_positive_and_finite(self, small_urand):
        scores = PageRank().reference(small_urand, iterations=5)
        assert np.isfinite(scores).all()
        assert (scores > 0).all()

    def test_tolerance_early_exit(self, tiny_graph):
        pr = PageRank()
        loose = pr.reference(tiny_graph, iterations=100, tolerance=1e-3)
        tight = pr.reference(tiny_graph, iterations=100, tolerance=0.0)
        assert np.allclose(loose, tight, atol=1e-2)


class TestTraceShape:
    def test_gather_dependencies(self, tiny_graph):
        run = PageRank().run(tiny_graph, max_refs=None, iterations=1)
        t = run.trace
        # Every property gather load depends on a structure load.
        prop_region = run.layout.properties["contrib"]
        for i in range(len(t)):
            if (
                t.is_load[i]
                and t.kind[i] == int(DataType.PROPERTY)
                and prop_region.contains(int(t.addr[i]))
                and t.dep[i] != NO_DEP
            ):
                assert t.kind[t.dep[i]] == int(DataType.STRUCTURE)

    def test_structure_addresses_sequential(self, tiny_graph):
        run = PageRank().run(tiny_graph, max_refs=None, iterations=1)
        t = run.trace
        struct_addrs = t.addr[t.kind == int(DataType.STRUCTURE)]
        assert (np.diff(struct_addrs) == 4).all()

    def test_budget_truncates(self, small_kron):
        run = PageRank().run(small_kron, max_refs=500)
        assert not run.completed
        assert run.result is None
        assert len(run.trace) == 500

    def test_recommended_skip_lands_in_gather(self, tiny_graph):
        pr = PageRank()
        skip = pr.recommended_skip(tiny_graph)
        run = pr.run(tiny_graph, max_refs=None, skip_refs=skip, iterations=1)
        t = run.trace
        # The recorded window must contain structure accesses (gather phase).
        assert (t.kind == int(DataType.STRUCTURE)).any()

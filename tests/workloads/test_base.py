"""Workload framework and registry tests."""

import pytest

from repro.trace import DataType
from repro.workloads import (
    PAPER_WORKLOAD_ORDER,
    WORKLOADS,
    WorkloadError,
    all_workloads,
    get_workload,
)


class TestRegistry:
    def test_paper_order(self):
        assert PAPER_WORKLOAD_ORDER == ("BC", "BFS", "PR", "SSSP", "CC")

    def test_get_workload_case_insensitive(self):
        assert get_workload("pr").name == "PR"
        assert get_workload("SSSP").name == "SSSP"

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_workload("kmeans")

    def test_all_workloads(self):
        names = [w.name for w in all_workloads()]
        assert names == list(PAPER_WORKLOAD_ORDER)

    def test_each_declares_gathered_property(self):
        for name in WORKLOADS:
            w = get_workload(name)
            assert w.gathered_property in w.property_names


class TestRunProtocol:
    def test_empty_graph_rejected(self):
        import numpy as np

        from repro.graph import build_csr

        g = build_csr(0, np.empty((0, 2)))
        with pytest.raises(WorkloadError):
            get_workload("PR").run(g)

    def test_run_returns_trace_run(self, tiny_graph):
        run = get_workload("PR").run(tiny_graph, max_refs=None, iterations=1)
        assert run.workload == "PR"
        assert run.dataset == "tiny"
        assert not run.weighted
        assert run.layout.graph is tiny_graph

    def test_layout_has_declared_properties(self, tiny_graph):
        for name in ("PR", "BFS", "CC", "BC"):
            w = get_workload(name)
            run = w.run(tiny_graph, max_refs=200)
            assert set(w.property_names) <= set(run.layout.properties)

    def test_recommended_skip_nonnegative(self, tiny_graph, weighted_graph):
        for name in WORKLOADS:
            w = get_workload(name)
            g = weighted_graph if w.needs_weights else tiny_graph
            assert w.recommended_skip(g) >= 0

    def test_stack_accesses_present(self, tiny_graph):
        run = get_workload("PR").run(tiny_graph, max_refs=None, iterations=1)
        t = run.trace
        stack = run.layout.stack
        hits = sum(
            1 for i in range(len(t)) if stack.contains(int(t.addr[i]))
        )
        assert hits >= tiny_graph.num_vertices  # one per loop iteration

    def test_trace_types_within_enum(self, tiny_graph):
        run = get_workload("BFS").run(tiny_graph, max_refs=None, source=0)
        assert set(run.trace.kind.tolist()) <= {int(dt) for dt in DataType}

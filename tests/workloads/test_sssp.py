"""SSSP correctness tests against Dijkstra."""

import numpy as np
import pytest

from repro.trace import DataType
from repro.workloads import INF_DIST, SSSP, WorkloadError, default_source


class TestCorrectness:
    def test_known_tiny_distances(self, weighted_graph):
        sssp = SSSP()
        run = sssp.run(weighted_graph, max_refs=None, source=0)
        assert run.completed
        assert list(run.result) == [0, 2, 5, 6]

    def test_traced_matches_dijkstra(self, small_kron_weighted):
        sssp = SSSP()
        src = default_source(small_kron_weighted)
        ref = sssp.reference(small_kron_weighted, source=src)
        run = sssp.run(small_kron_weighted, max_refs=None, source=src)
        assert np.array_equal(run.result, ref)

    @pytest.mark.parametrize("delta", [1, 16, 64, 1024])
    def test_delta_invariance(self, weighted_graph, delta):
        run = SSSP().run(weighted_graph, max_refs=None, source=0, delta=delta)
        assert list(run.result) == [0, 2, 5, 6]

    def test_unreachable_is_inf(self, weighted_graph):
        run = SSSP().run(weighted_graph, max_refs=None, source=3)
        assert run.result[0] == INF_DIST

    def test_requires_weights(self, tiny_graph):
        with pytest.raises(WorkloadError):
            SSSP().run(tiny_graph)

    def test_invalid_delta(self, weighted_graph):
        with pytest.raises(ValueError):
            SSSP().run(weighted_graph, max_refs=None, delta=0)


class TestTraceShape:
    def test_structure_stride_is_eight_bytes(self, weighted_graph):
        """Weighted graphs use 8-byte structure entries (paper §V-C2)."""
        run = SSSP().run(weighted_graph, max_refs=None, source=0)
        assert run.layout.structure_element_size == 8
        t = run.trace
        struct = np.sort(np.unique(t.addr[t.kind == int(DataType.STRUCTURE)]))
        assert ((np.diff(struct) % 8) == 0).all()

    def test_bins_intermediate_traffic(self, small_kron_weighted):
        run = SSSP().run(small_kron_weighted, max_refs=20_000)
        t = run.trace
        im = (t.kind == int(DataType.INTERMEDIATE)).sum()
        assert im > 0

"""Edge-centric PageRank (§VI extension) tests."""

import numpy as np
import pytest

from repro.memory import EdgeListLayout
from repro.system import Machine, SystemConfig
from repro.trace import DataType
from repro.workloads import EdgeCentricPageRank, get_workload


class TestEdgeListLayout:
    def test_edge_array_matches_csr_semantics(self, tiny_graph):
        layout = EdgeListLayout(tiny_graph)
        # Gather sources are exactly the CSR neighbor entries, in order.
        assert np.array_equal(layout.edge_src, tiny_graph.neighbors)
        # Destinations are the CSR rows, non-decreasing (dst-sorted).
        assert (np.diff(layout.edge_dst) >= 0).all()
        assert layout.num_edges == tiny_graph.num_edges

    def test_structure_region_tagged(self, tiny_graph):
        layout = EdgeListLayout(tiny_graph)
        assert layout.space.page_table.is_structure(layout.structure.base)
        assert layout.structure_element_size == 8

    def test_scan_extracts_gather_indices(self, tiny_graph):
        layout = EdgeListLayout(tiny_graph)
        ids = layout.scan_structure_line(layout.structure.base)
        assert list(ids) == list(tiny_graph.neighbors[:8])  # 8 entries/line

    def test_is_structure_line(self, tiny_graph):
        layout = EdgeListLayout(tiny_graph)
        assert layout.is_structure_line(layout.structure.base)
        assert not layout.is_structure_line(layout.properties["prop"].base)


class TestEdgeCentricPageRank:
    def test_registry_lookup(self):
        assert get_workload("pr-edge").name == "PR-edge"

    def test_matches_csr_pagerank(self, small_kron):
        pre = EdgeCentricPageRank()
        csr = get_workload("PR")
        assert np.allclose(
            pre.reference(small_kron, iterations=3),
            csr.reference(small_kron, iterations=3),
        )
        run = pre.run(small_kron, max_refs=None, iterations=3)
        assert run.completed
        assert np.allclose(run.result, csr.reference(small_kron, iterations=3))

    def test_structure_stream_is_sequential(self, small_kron):
        run = EdgeCentricPageRank().run(small_kron, max_refs=None, iterations=1)
        t = run.trace
        struct = t.addr[t.kind == int(DataType.STRUCTURE)]
        assert (np.diff(struct) == 8).all()  # a perfect 8-byte stream

    def test_gathers_depend_on_edge_loads(self, tiny_graph):
        run = EdgeCentricPageRank().run(tiny_graph, max_refs=None, iterations=1)
        t = run.trace
        contrib = run.layout.properties["contrib"]
        deps = [
            int(t.dep[i])
            for i in range(len(t))
            if t.is_load[i] and t.dep[i] >= 0 and contrib.contains(int(t.addr[i]))
        ]
        assert deps
        assert all(t.kind[d] == int(DataType.STRUCTURE) for d in deps)

    def test_droplet_works_unchanged_on_edge_layout(self, small_kron):
        """The paper's §VI claim, executed: same prefetcher, COO layout."""
        pre = EdgeCentricPageRank()
        run = pre.run(
            small_kron, max_refs=30_000, skip_refs=pre.recommended_skip(small_kron)
        )
        base = Machine(SystemConfig.scaled_baseline(), run.layout, "none").run(run.trace)
        droplet = Machine(
            SystemConfig.scaled_baseline(), run.layout, "droplet", "contrib"
        ).run(run.trace)
        assert droplet.mpp.structure_fills_seen > 0
        assert droplet.llc_mpki() <= base.llc_mpki()

    def test_budget_truncation(self, small_kron):
        run = EdgeCentricPageRank().run(small_kron, max_refs=500)
        assert not run.completed
        assert len(run.trace) == 500

    def test_trace_into_not_supported_directly(self, tiny_graph):
        with pytest.raises(NotImplementedError):
            EdgeCentricPageRank().trace_into(tiny_graph, None)

"""Differential analyzer: segmentation, alignment, diffing, writers."""

from __future__ import annotations

import json

import pytest

from repro.runtime import TraceSpec
from repro.system.runner import simulate
from repro.telemetry import (
    DIFF_FORMAT,
    Telemetry,
    diff_payloads,
    diff_table_rows,
    load_profile,
    phase_segments,
    phase_table_rows,
    telemetry_dict,
    validate_diff_payload,
    write_diff_html,
    write_diff_json,
    write_json,
)
from repro.telemetry.diff import align_segments


def _profile(setup: str) -> dict:
    run = TraceSpec("BFS", "mesh", max_refs=6000, scale_shift=-3).trace()
    session = Telemetry(interval_cycles=2_000, attribution=True)
    simulate(run, setup=setup, telemetry=session)
    return telemetry_dict(
        session, meta={"workload": "BFS", "dataset": "mesh", "setup": setup}
    )


@pytest.fixture(scope="module")
def stream_payload():
    return _profile("stream")


@pytest.fixture(scope="module")
def droplet_payload():
    return _profile("droplet")


class TestPhaseSegments:
    def test_labels_cover_warmup_plus_phases(self, stream_payload):
        segments = phase_segments(stream_payload)
        assert segments[0]["label"] == "warmup"
        assert [s["label"] for s in segments[1:]] == stream_payload["phases"]

    def test_segments_telescope_to_final_totals(self, stream_payload):
        segments = phase_segments(stream_payload)
        final = stream_payload["samples"][-1]["values"]
        for name in ("core.instructions", "cache.l3.misses", "core.cycles"):
            total = sum(s["values"].get(name, 0.0) for s in segments)
            assert total == pytest.approx(final[name])
        assert sum(s["cycles"] for s in segments) == pytest.approx(
            stream_payload["samples"][-1]["cycle"]
        )

    def test_unphased_payload_is_one_run_segment(self, stream_payload):
        flat = dict(stream_payload)
        flat["samples"] = [
            s for s in stream_payload["samples"] if s["reason"] != "phase"
        ]
        segments = phase_segments(flat)
        assert [s["label"] for s in segments] == ["run"]


class TestAlignment:
    def test_identical_labels_zip(self):
        a = [{"label": "x"}, {"label": "y"}]
        pairs, ua, ub = align_segments(a, list(a))
        assert [(p[0]["label"], p[1]["label"]) for p in pairs] == [
            ("x", "x"),
            ("y", "y"),
        ]
        assert ua == [] and ub == []

    def test_lcs_alignment_reports_leftovers(self):
        a = [{"label": l} for l in ("warmup", "level:2", "level:3", "level:4")]
        b = [{"label": l} for l in ("warmup", "level:2", "level:4")]
        pairs, ua, ub = align_segments(a, b)
        assert [p[0]["label"] for p in pairs] == ["warmup", "level:2", "level:4"]
        assert ua == ["level:3"]
        assert ub == []


class TestDiffPayloads:
    def test_self_diff_is_all_zero(self, stream_payload):
        diff = diff_payloads(stream_payload, stream_payload)
        validate_diff_payload(diff)
        assert all(e["delta"] == 0 for e in diff["totals"].values())
        assert all(e["delta"] == 0 for e in diff["derived"].values())
        for phase in diff["phases"]:
            assert all(e["delta"] == 0 for e in phase["rates"].values())
        levels = diff["attribution"]["levels"]
        for block in levels.values():
            assert block["total_misses"]["delta"] == 0
            assert all(e["delta"] == 0 for e in block["misses"].values())

    def test_droplet_reduces_property_mpki(
        self, stream_payload, droplet_payload
    ):
        diff = diff_payloads(stream_payload, droplet_payload)
        validate_diff_payload(diff)
        entry = diff["derived"]["llc_mpki_property"]
        assert entry["candidate"] < entry["baseline"]
        # ... and at least one aligned phase shows the reduction too.
        assert any(
            p["rates"]["llc_mpki_property"]["delta"] < 0 for p in diff["phases"]
        )

    def test_metrics_prefix_filter(self, stream_payload, droplet_payload):
        diff = diff_payloads(
            stream_payload, droplet_payload, metrics=["cache.l3"]
        )
        assert diff["totals"]
        assert all(n.startswith("cache.l3") for n in diff["totals"])

    def test_entry_shape(self, stream_payload, droplet_payload):
        diff = diff_payloads(stream_payload, droplet_payload)
        entry = diff["totals"]["cache.l3.misses"]
        assert entry["delta"] == entry["candidate"] - entry["baseline"]
        assert entry["ratio"] == pytest.approx(
            entry["candidate"] / entry["baseline"]
        )

    def test_validation_rejects_corruption(self, stream_payload):
        diff = diff_payloads(stream_payload, stream_payload)
        diff["format"] = "nonsense"
        with pytest.raises(ValueError, match="format"):
            validate_diff_payload(diff)
        diff["format"] = DIFF_FORMAT
        diff["derived"]["ipc"]["delta"] = 42.0
        with pytest.raises(ValueError, match="inconsistent delta"):
            validate_diff_payload(diff)


class TestRendering:
    @pytest.fixture(scope="class")
    def diff(self, stream_payload, droplet_payload):
        return diff_payloads(stream_payload, droplet_payload)

    def test_table_rows(self, diff):
        rows = diff_table_rows(diff)
        assert {"metric", "baseline", "candidate", "delta", "ratio"} <= set(
            rows[0]
        )
        assert any(r["metric"] == "llc_mpki_property" for r in rows)
        phase_rows = phase_table_rows(diff, "llc_mpki_property")
        assert phase_rows[0]["phase"] == "warmup"

    def test_json_round_trip(self, diff, tmp_path):
        path = write_diff_json(diff, tmp_path / "diff.json")
        loaded = json.loads(path.read_text())
        validate_diff_payload(loaded)
        assert loaded["format"] == DIFF_FORMAT

    def test_html_report(self, diff, tmp_path):
        path = write_diff_html(diff, tmp_path / "diff.html")
        text = path.read_text()
        assert text.startswith("<!doctype html>")
        assert "stream vs droplet" in text
        assert "Whole-run derived rates" in text
        assert "llc_mpki_property" in text
        assert "Attribution" in text
        assert 'id="diff-data"' in text

    def test_load_profile_round_trip(self, stream_payload, tmp_path):
        path = write_json(stream_payload, tmp_path / "profile.json")
        loaded = load_profile(path)
        assert loaded == stream_payload
        with pytest.raises(ValueError):
            (tmp_path / "bad.json").write_text('{"format": "nope"}')
            load_profile(tmp_path / "bad.json")

"""Span recorder, sidecar journal and Chrome-trace export."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import spans
from repro.telemetry.spans import (
    RECORD_KINDS,
    SPANS_FORMAT,
    SpanRecorder,
    chrome_path,
    chrome_trace_events,
    read_sidecar,
    sidecar_path,
    write_chrome_trace,
)


class TestRecorder:
    def test_span_pair_records_begin_and_end(self):
        rec = SpanRecorder()
        with rec.span("work", index=3) as span:
            span.set(tier="vector")
        kinds = [r["k"] for r in rec.records()]
        assert kinds == ["B", "E"]
        begin, end = rec.records()
        assert begin["id"] == end["id"]
        assert begin["attrs"] == {"index": 3}
        assert end["attrs"] == {"index": 3, "tier": "vector", "status": "ok"}
        assert end["dur"] >= 0

    def test_span_exception_marks_error_and_reraises(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError):
            with rec.span("work"):
                raise ValueError("boom")
        end = rec.records()[-1]
        assert end["k"] == "E"
        assert end["attrs"]["status"] == "error"
        assert end["attrs"]["error_kind"] == "ValueError"

    def test_event_and_meta_kinds(self):
        rec = SpanRecorder()
        rec.event("point.retry", index=1)
        rec.meta("sweep.run", total=4)
        rec.meta("sweep.finish", kind="F", metrics={"errors": 0})
        assert [r["k"] for r in rec.records()] == ["I", "M", "F"]
        assert all(r["k"] in RECORD_KINDS for r in rec.records())

    def test_meta_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="meta kind"):
            SpanRecorder().meta("x", kind="Q")

    def test_ring_bound_drops_oldest(self):
        rec = SpanRecorder(capacity=4)
        for i in range(10):
            rec.event("tick", i=i)
        assert len(rec) == 4
        assert rec.emitted == 10
        assert rec.dropped == 6
        assert [r["attrs"]["i"] for r in rec.records()] == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            SpanRecorder(capacity=0)

    def test_allocation_counter_advances_per_record(self):
        before = spans.spans_created()
        rec = SpanRecorder()
        rec.event("a")
        with rec.span("b"):
            pass
        assert spans.spans_created() - before == 3  # I + B + E


class TestCurrentRecorder:
    def test_disabled_by_default(self):
        assert spans.current() is None

    def test_use_scopes_and_restores(self):
        rec = SpanRecorder()
        with spans.use(rec):
            assert spans.current() is rec
            inner = SpanRecorder()
            with spans.use(inner):
                assert spans.current() is inner
            assert spans.current() is rec
        assert spans.current() is None

    def test_use_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with spans.use(SpanRecorder()):
                raise RuntimeError("boom")
        assert spans.current() is None


class TestSidecar:
    def test_paths_derive_from_ledger(self, tmp_path):
        ledger = tmp_path / "run-1.jsonl"
        assert sidecar_path(ledger) == tmp_path / "run-1.spans.jsonl"
        assert chrome_path(ledger) == tmp_path / "run-1.trace.json"

    def test_round_trip(self, tmp_path):
        path = tmp_path / "runs" / "r.spans.jsonl"
        rec = SpanRecorder(sidecar=path)
        with rec.span("work", index=0):
            rec.event("inner")
        rec.meta("sweep.finish", kind="F", metrics={"errors": 0})
        records = read_sidecar(path)
        assert [r["k"] for r in records] == ["B", "I", "E", "F"]
        assert records == rec.records()

    def test_missing_sidecar_reads_empty(self, tmp_path):
        assert read_sidecar(tmp_path / "nope.jsonl") == []

    def test_torn_tail_tolerated(self, tmp_path):
        path = tmp_path / "r.spans.jsonl"
        rec = SpanRecorder(sidecar=path)
        rec.event("a")
        rec.event("b")
        # Simulate a hard kill mid-write: truncate the last line.
        text = path.read_text()
        path.write_text(text[: len(text) - 10])
        records = read_sidecar(path)
        assert [r["attrs"] for r in records if r["k"] == "I"] == [{}]

    def test_sidecar_survives_ring_wraparound(self, tmp_path):
        path = tmp_path / "r.spans.jsonl"
        rec = SpanRecorder(sidecar=path, capacity=2)
        for i in range(8):
            rec.event("tick", i=i)
        assert len(rec) == 2 and rec.dropped == 6
        assert len(read_sidecar(path)) == 8  # the journal keeps them all


class TestChromeExport:
    def test_complete_and_instant_events(self):
        rec = SpanRecorder()
        rec.meta("sweep.run", total=1)
        with rec.span("point", index=0):
            rec.event("point.retry", index=0)
        events = chrome_trace_events(rec.records())
        phases = {e["name"]: e["ph"] for e in events}
        assert phases["point"] == "X"
        assert phases["point.retry"] == "i"
        assert phases["sweep.run"] == "i"
        ts = [e["ts"] for e in events]
        assert ts == sorted(ts)
        assert all(e["ts"] >= 0 for e in events)

    def test_unfinished_span_becomes_instant(self):
        rec = SpanRecorder()
        rec.start("point", index=0)  # never finished: a crashed worker
        events = chrome_trace_events(rec.records())
        assert [e["name"] for e in events] == ["point (unfinished)"]
        assert events[0]["ph"] == "i"

    def test_empty_records(self):
        assert chrome_trace_events([]) == []

    def test_write_from_recorder_prefers_sidecar(self, tmp_path):
        path = tmp_path / "r.spans.jsonl"
        rec = SpanRecorder(sidecar=path, capacity=2)
        for i in range(6):
            rec.event("tick", i=i)
        out = write_chrome_trace(rec, tmp_path / "r.trace.json")
        payload = json.loads(out.read_text())
        assert payload["otherData"]["format"] == SPANS_FORMAT
        assert len(payload["traceEvents"]) == 6  # all, not just the ring

    def test_write_from_path_and_records(self, tmp_path):
        path = tmp_path / "r.spans.jsonl"
        rec = SpanRecorder(sidecar=path)
        with rec.span("work"):
            pass
        from_path = json.loads(
            write_chrome_trace(path, tmp_path / "a.json").read_text()
        )
        from_records = json.loads(
            write_chrome_trace(rec.records(), tmp_path / "b.json").read_text()
        )
        assert from_path["traceEvents"] == from_records["traceEvents"]


class TestRotation:
    def _bounded(self, tmp_path, max_bytes=256):
        path = tmp_path / "r.spans.jsonl"
        return SpanRecorder(sidecar=path, max_bytes=max_bytes), path

    def test_rotates_past_the_byte_bound(self, tmp_path):
        rec, path = self._bounded(tmp_path)
        for i in range(32):
            rec.event("tick", i=i)
        rotated = path.parent / (path.name + ".1")
        assert rec.rotations >= 1
        assert rotated.is_file()
        # The footprint stays bounded: live file under the bound plus
        # one appended record, one prior generation kept.
        assert path.stat().st_size < 256 + 200

    def test_read_sidecar_spans_generations_in_order(self, tmp_path):
        rec, path = self._bounded(tmp_path)
        for i in range(32):
            rec.event("tick", i=i)
        records = read_sidecar(path)
        seen = [r["attrs"]["i"] for r in records]
        # Oldest-first with no reordering; only whole generations between
        # the two on disk may have been dropped (single .1 retention).
        assert seen == sorted(seen)
        assert seen[-1] == 31
        assert len(seen) >= 2

    def test_tailer_follows_rotation_without_loss(self, tmp_path):
        from repro.telemetry.tail import JsonlTailer

        rec, path = self._bounded(tmp_path, max_bytes=512)
        tailer = JsonlTailer(path)
        seen = []
        for i in range(64):
            rec.event("tick", i=i)
            if i % 5 == 0:
                seen.extend(r["attrs"]["i"] for r in tailer.poll())
        seen.extend(r["attrs"]["i"] for r in tailer.poll())
        assert seen == list(range(64))
        assert rec.rotations >= 1  # the scenario actually rotated

    def test_zero_or_unset_bound_disables_rotation(self, tmp_path, monkeypatch):
        monkeypatch.delenv(spans.ROTATE_ENV_VAR, raising=False)
        rec = SpanRecorder(sidecar=tmp_path / "a.jsonl")
        assert rec.max_bytes is None
        rec = SpanRecorder(sidecar=tmp_path / "b.jsonl", max_bytes=0)
        assert rec.max_bytes is None

    def test_env_var_sets_default_bound(self, tmp_path, monkeypatch):
        monkeypatch.setenv(spans.ROTATE_ENV_VAR, "300")
        rec = SpanRecorder(sidecar=tmp_path / "r.jsonl")
        assert rec.max_bytes == 300
        for i in range(32):
            rec.event("tick", i=i)
        assert rec.rotations >= 1

    def test_chrome_export_includes_rotated_generation(self, tmp_path):
        rec, path = self._bounded(tmp_path)
        for i in range(32):
            rec.event("tick", i=i)
        payload = json.loads(
            write_chrome_trace(rec, tmp_path / "t.json").read_text()
        )
        ticks = [e["args"]["i"] for e in payload["traceEvents"]]
        assert len(ticks) == len(read_sidecar(path))
        assert ticks[-1] == 31

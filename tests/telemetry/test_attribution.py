"""Attribution profiler: region resolution, shadow tags, conservation.

The load-bearing property: per-region miss counts must sum *exactly* to
each level's total miss counters, and shadow-tag class counts must sum
to the same totals — for every workload.  Attribution that loses or
double-counts misses is worse than none.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.cache.reuse import COLD_DISTANCE
from repro.memory.allocator import AddressSpace
from repro.runtime import TraceSpec
from repro.system.runner import simulate
from repro.telemetry import (
    MISS_CLASSES,
    AttributionProfiler,
    RegionResolver,
    ShadowTagStore,
    Telemetry,
)
from repro.trace import DataType

ALL_WORKLOADS = ["BC", "BFS", "PR", "SSSP", "CC", "PR-EDGE"]


def _space_layout():
    """A minimal layout stand-in: a real AddressSpace, no graph."""
    space = AddressSpace()
    space.alloc("offsets", 4096, DataType.STRUCTURE, element_size=8)
    space.alloc("structure", 8192, DataType.STRUCTURE)
    space.alloc("prop:rank", 4096, DataType.PROPERTY)
    return SimpleNamespace(space=space)


class TestRegionResolver:
    def test_resolves_every_region_and_other(self):
        layout = _space_layout()
        resolver = RegionResolver(layout)
        assert resolver.names == ["offsets", "structure", "prop:rank", "other"]
        for region in layout.space.sorted_regions():
            idx = resolver.names.index(region.name)
            assert resolver.resolve_addr(region.base) == idx
            assert resolver.resolve_addr(region.end - 1) == idx
            assert resolver.resolve_line(region.base // 64) == idx
        # Below the heap, in a guard gap, and far above: all "other".
        assert resolver.resolve_addr(0) == resolver.other_index
        assert resolver.resolve_addr(2**40) == resolver.other_index
        first = layout.space.sorted_regions()[0]
        assert resolver.resolve_addr(first.end) == resolver.other_index

    def test_no_layout_maps_everything_to_other(self):
        resolver = RegionResolver(None)
        assert resolver.names == ["other"]
        assert resolver.resolve_line(12345) == 0
        assert resolver.catalogue() == []

    def test_catalogue_is_json_safe(self):
        resolver = RegionResolver(_space_layout())
        cat = resolver.catalogue()
        assert [r["name"] for r in cat] == ["offsets", "structure", "prop:rank"]
        assert all(
            set(r) == {"name", "base", "size", "kind", "element_size"}
            for r in cat
        )


class TestShadowTagStore:
    def test_cold_then_reuse_distances(self):
        shadow = ShadowTagStore(capacity_lines=4)
        assert shadow.access(10) == COLD_DISTANCE
        assert shadow.access(11) == COLD_DISTANCE
        assert shadow.access(10) == 1  # one distinct line in between
        assert shadow.access(10) == 0  # immediate re-touch
        assert shadow.access(11) == 1

    def test_distance_counts_distinct_lines_not_accesses(self):
        shadow = ShadowTagStore(capacity_lines=8)
        shadow.access(1)
        for _ in range(5):
            shadow.access(2)  # many touches, one distinct line
        assert shadow.access(1) == 1

    def test_would_hit_matches_capacity(self):
        shadow = ShadowTagStore(capacity_lines=2)
        assert not shadow.would_hit(COLD_DISTANCE)
        assert shadow.would_hit(0)
        assert shadow.would_hit(1)
        assert not shadow.would_hit(2)

    def test_compaction_preserves_distances(self):
        # Tiny timestamp arena forces repeated compaction mid-stream.
        shadow = ShadowTagStore(capacity_lines=64, initial_slots=16)
        n = 50
        for line in range(n):
            assert shadow.access(line) == COLD_DISTANCE
        for line in range(n):
            # Every other line was touched since this line's last access.
            assert shadow.access(line) == n - 1
        assert len(shadow) == n
        assert shadow.accesses == 2 * n

    def test_matches_naive_lru_stack(self):
        import random

        rng = random.Random(7)
        shadow = ShadowTagStore(capacity_lines=8, initial_slots=16)
        stack: list[int] = []  # most recent last
        for _ in range(2000):
            line = rng.randrange(24)
            if line in stack:
                expected = len(stack) - 1 - stack.index(line)
                stack.remove(line)
            else:
                expected = COLD_DISTANCE
            stack.append(line)
            assert shadow.access(line) == expected


class TestConservation:
    """Attribution sums must equal the real hierarchy's miss counters."""

    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_regions_and_classes_sum_to_level_totals(self, workload):
        run = TraceSpec(workload, "mesh", max_refs=3000, scale_shift=-3).trace()
        session = Telemetry(interval_cycles=5_000, attribution=True)
        result = simulate(run, setup="droplet", telemetry=session)
        profiler = session.attribution_profiler
        assert profiler is not None

        l2_total = result.hierarchy.l2s[0].stats.total_misses
        l3_total = result.hierarchy.l3.stats.total_misses
        assert profiler.l2.total_misses == l2_total
        assert profiler.l3.total_misses == l3_total
        for lvl, total in ((profiler.l2, l2_total), (profiler.l3, l3_total)):
            assert sum(lvl.misses) == total
            assert sum(lvl.classes) == total
            for region, per_class in enumerate(lvl.classes_by_region):
                assert sum(per_class) == lvl.misses[region]

    def test_shadow_stream_length_matches_l2_accesses(self):
        run = TraceSpec("PR", "mesh", max_refs=3000, scale_shift=-3).trace()
        session = Telemetry(attribution=True)
        result = simulate(run, setup="stream", telemetry=session)
        profiler = session.attribution_profiler
        stats = result.hierarchy.l2s[0].stats
        # The L2 stream is every demand access that missed the L1.
        assert profiler.l2.shadow.accesses == stats.total_hits + stats.total_misses
        l3 = result.hierarchy.l3.stats
        assert profiler.l3.shadow.accesses == l3.total_hits + l3.total_misses

    def test_classify_off_skips_shadow(self):
        run = TraceSpec("BFS", "mesh", max_refs=2000, scale_shift=-3).trace()
        session = Telemetry(attribution=True, classify_misses=False)
        simulate(run, setup="none", telemetry=session)
        profiler = session.attribution_profiler
        assert profiler.l3.shadow is None
        block = profiler.as_dict()
        assert "classes" not in block["levels"]["l3"]


class TestProfilerReporting:
    @pytest.fixture(scope="class")
    def profiler(self):
        run = TraceSpec("BFS", "mesh", max_refs=3000, scale_shift=-3).trace()
        session = Telemetry(attribution=True)
        simulate(run, setup="droplet", telemetry=session)
        return session.attribution_profiler

    def test_registry_gauges_match_profiler(self):
        run = TraceSpec("BFS", "mesh", max_refs=3000, scale_shift=-3).trace()
        session = Telemetry(attribution=True)
        simulate(run, setup="droplet", telemetry=session)
        profiler = session.attribution_profiler
        values = session.registry.snapshot()
        assert values["attribution.l3.misses"] == profiler.l3.total_misses
        by_region = profiler.l3.misses_by_region()
        for name, count in by_region.items():
            assert values["attribution.l3.misses.%s" % name] == count
            assert (
                values["attribution.l3.bytes.%s" % name]
                == count * profiler.line_size
            )
        for cls, label in enumerate(MISS_CLASSES):
            assert values["attribution.l3.%s" % label] == profiler.l3.classes[cls]

    def test_as_dict_shape(self, profiler):
        block = profiler.as_dict(instructions=10_000)
        assert set(block) >= {"line_size", "classify", "regions", "levels"}
        l3 = block["levels"]["l3"]
        assert sum(l3["misses"].values()) == l3["total_misses"]
        assert sum(l3["classes"].values()) == l3["total_misses"]
        for name, count in l3["misses"].items():
            assert l3["bytes"][name] == count * block["line_size"]
            assert l3["mpki"][name] == pytest.approx(1000.0 * count / 10_000)
        # Pollution rides along once the machine attaches the tracker.
        assert "pollution" in block


class TestStandaloneProfiler:
    def test_manual_feed_without_layout(self):
        profiler = AttributionProfiler(l2_lines=4, l3_lines=4)
        profiler.on_demand_access("L2", 1)  # L2 hit: no miss anywhere
        profiler.on_demand_access("L3", 1)  # L2 miss, L3 hit
        profiler.on_demand_access("DRAM", 2)  # misses both levels
        assert profiler.l2.total_misses == 2
        assert profiler.l3.total_misses == 1
        assert profiler.l2.misses_by_region() == {"other": 2}
        assert profiler.l3.class_counts()["compulsory"] == 1

"""Telemetry's contract with the simulator: zero interference.

The acceptance bar for the subsystem: instrumented runs must not change
simulated results at all (the registry is pull-based, sampling happens
at window boundaries, events never feed back), and a disabled or absent
session must leave the machine on the exact uninstrumented code path.
The same bar applies to runtime span tracing: with no recorder installed
the instrumented control paths must allocate zero span records.
"""

from __future__ import annotations

import pytest

from repro.reporting import summarize
from repro.runtime import SweepPoint, SweepRunner, TraceCache, TraceSpec
from repro.system.runner import simulate
from repro.telemetry import Telemetry, telemetry_dict, validate_telemetry_payload
from repro.telemetry import spans

MAX_REFS = 3000
SCALE_SHIFT = -6


@pytest.fixture(scope="module")
def kron_run():
    return TraceSpec(
        "PR", "kron", max_refs=MAX_REFS, scale_shift=SCALE_SHIFT
    ).trace()


@pytest.fixture(scope="module")
def mesh_pr_run():
    # side-12 mesh: all ten PageRank iterations fit in the budget.
    return TraceSpec(
        "PR", "mesh", max_refs=40_000, scale_shift=-3
    ).trace()


class TestZeroInterference:
    @pytest.mark.parametrize("setup", ["none", "droplet"])
    def test_disabled_session_is_bit_identical_to_absent(self, kron_run, setup):
        absent = summarize(simulate(kron_run, setup=setup, telemetry=None))
        disabled = summarize(
            simulate(kron_run, setup=setup, telemetry=Telemetry.disabled())
        )
        assert disabled == absent

    @pytest.mark.parametrize("setup", ["none", "droplet"])
    def test_enabled_session_never_changes_simulated_results(
        self, kron_run, setup
    ):
        absent = summarize(simulate(kron_run, setup=setup, telemetry=None))
        session = Telemetry(interval_cycles=5_000)
        instrumented = summarize(
            simulate(kron_run, setup=setup, telemetry=session)
        )
        assert instrumented == absent
        assert len(session.timeline) > 0  # it really did sample

    def test_session_is_single_use(self, kron_run):
        session = Telemetry()
        simulate(kron_run, setup="none", telemetry=session)
        with pytest.raises(RuntimeError, match="already attached"):
            simulate(kron_run, setup="none", telemetry=session)

    @pytest.mark.parametrize("setup", ["none", "stream", "droplet"])
    def test_attribution_never_changes_simulated_results(self, kron_run, setup):
        absent = summarize(simulate(kron_run, setup=setup, telemetry=None))
        session = Telemetry(interval_cycles=5_000, attribution=True)
        instrumented = summarize(
            simulate(kron_run, setup=setup, telemetry=session)
        )
        assert instrumented == absent
        profiler = session.attribution_profiler
        assert profiler is not None
        assert profiler.l3.total_misses > 0  # it really did observe

    def test_attribution_block_in_payload_validates(self, kron_run):
        session = Telemetry(interval_cycles=5_000, attribution=True)
        simulate(kron_run, setup="droplet", telemetry=session)
        payload = telemetry_dict(session, meta={"label": "unit"})
        validate_telemetry_payload(payload)
        assert "attribution" in payload["families"]
        block = payload["attribution"]
        assert set(block["levels"]) == {"l2", "l3"}
        assert "pollution" in block
        # MPKI uses the final sample's instruction count.
        instructions = payload["samples"][-1]["values"]["core.instructions"]
        l3 = block["levels"]["l3"]
        total_mpki = sum(l3["mpki"].values())
        assert total_mpki == pytest.approx(
            1000.0 * l3["total_misses"] / instructions
        )

    def test_plain_session_has_no_attribution_block(self, kron_run):
        session = Telemetry(interval_cycles=5_000)
        simulate(kron_run, setup="droplet", telemetry=session)
        payload = telemetry_dict(session)
        assert "attribution" not in payload
        assert "attribution" not in payload["families"]


class TestInstrumentedRun:
    @pytest.fixture(scope="class")
    def session(self, kron_run):
        session = Telemetry(interval_cycles=2_000)
        simulate(kron_run, setup="droplet", telemetry=session)
        return session

    def test_core_metric_families_present(self, session):
        families = session.registry.families()
        assert set(("cache", "core", "dram", "prefetch")) <= set(families)
        assert "droplet" in families  # MPP instrumented under droplet setup

    def test_final_sample_matches_machine_totals(self, kron_run, session):
        result = simulate(kron_run, setup="droplet")
        final = session.timeline.samples[-1]
        assert final.reason == "final"
        assert final.values["core.instructions"] == result.instructions
        assert final.values["cache.l3.misses"] == result.hierarchy.l3.stats.total_misses
        assert final.ref_index == len(kron_run.trace)

    def test_events_and_payload_validate(self, session):
        assert session.events.emitted > 0
        payload = telemetry_dict(session, meta={"label": "unit"})
        validate_telemetry_payload(payload)
        assert len(payload["intervals"]) >= 2  # interval sampling happened

    def test_window_histograms_populated(self, session):
        histograms = session.registry.histograms()
        assert histograms["core.window_exposed"]["count"] > 0


class TestSpanZeroOverhead:
    """Satellite: tracing disabled means *zero* span allocations."""

    POINT = SweepPoint(
        "PR", "kron", max_refs=MAX_REFS, scale_shift=SCALE_SHIFT
    )

    def test_simulate_with_tracing_off_allocates_no_spans(self, kron_run):
        assert spans.current() is None
        before = spans.spans_created()
        simulate(kron_run, setup="droplet")
        assert spans.spans_created() == before

    def test_sweep_with_tracing_off_allocates_no_spans(self, tmp_path):
        runner = SweepRunner(trace_cache=TraceCache(tmp_path / "traces"))
        before = spans.spans_created()
        report = runner.run([self.POINT])
        assert report.ok()
        assert spans.spans_created() == before

    def test_traced_sweep_results_bit_identical_to_untraced(self, tmp_path):
        untraced = SweepRunner(
            trace_cache=TraceCache(tmp_path / "a")
        ).run([self.POINT])
        traced = SweepRunner(
            trace_cache=TraceCache(tmp_path / "b"),
            tracer=spans.SpanRecorder(),
        ).run([self.POINT])
        assert traced.points[0].summary == untraced.points[0].summary
        assert traced.points[0].replay_tier == untraced.points[0].replay_tier

    def test_traced_sweep_really_recorded(self, tmp_path):
        tracer = spans.SpanRecorder()
        SweepRunner(
            trace_cache=TraceCache(tmp_path / "traces"), tracer=tracer
        ).run([self.POINT])
        names = {r.get("name") for r in tracer.records()}
        assert {"sweep.run", "point", "point.final", "sweep.finish"} <= names
        assert spans.current() is None  # runner restored the global


class TestPhaseTimelines:
    def test_pagerank_mesh_one_phase_sample_per_iteration(self, mesh_pr_run):
        markers = mesh_pr_run.trace.phases
        assert [label for _, label in markers] == [
            "iteration:%d" % i for i in range(10)
        ]
        session = Telemetry(interval_cycles=10**9)  # phases only
        simulate(mesh_pr_run, setup="droplet", telemetry=session)
        assert session.timeline.phase_labels() == [
            "iteration:%d" % i for i in range(10)
        ]
        # Phase samples are attributed to non-decreasing cycles/refs.
        phases = session.timeline.phases()
        cycles = [s.cycle for s in phases]
        assert cycles == sorted(cycles)
        refs = [s.ref_index for s in phases]
        assert refs == sorted(refs)
        payload = telemetry_dict(session)
        validate_telemetry_payload(payload, require_phases=True)

    def test_bfs_mesh_records_frontier_levels(self):
        run = TraceSpec("BFS", "mesh", max_refs=20_000, scale_shift=-3).trace()
        session = Telemetry(interval_cycles=10**9)
        simulate(run, setup="none", telemetry=session)
        labels = session.timeline.phase_labels()
        assert labels, "BFS should mark frontier levels"
        assert all(label.split(":")[0] in ("level", "bottomup") for label in labels)

"""Exporters: payload shape, derived rates, schema validation, writers."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    TELEMETRY_FORMAT,
    Telemetry,
    derive_rates,
    parse_prom_text,
    render_prom,
    telemetry_dict,
    telemetry_prom_samples,
    validate_telemetry_payload,
    write_csv,
    write_html,
    write_json,
    write_profile,
    write_prom,
)


def instrumented_session() -> Telemetry:
    """A hand-driven session with the machine's well-known metric names."""
    tel = Telemetry(interval_cycles=100, event_capacity=16)
    box = {
        "core.instructions": 0.0,
        "core.miss_latency": 0.0,
        "core.exposed_latency": 0.0,
        "cache.l2.hits": 0.0,
        "cache.l2.misses": 0.0,
        "cache.l3.misses": 0.0,
        "cache.l3.misses.structure": 0.0,
        "cache.l3.misses.property": 0.0,
        "dram.bus_accesses": 0.0,
        "prefetch.issued": 0.0,
        "prefetch.useful": 0.0,
    }
    for name in box:
        tel.registry.gauge(name, lambda name=name: box[name])
    tel._box = box  # test handle, not part of the API
    return tel


def drive(tel: Telemetry) -> None:
    box = tel._box
    box.update(
        {
            "core.instructions": 1000.0,
            "core.miss_latency": 400.0,
            "core.exposed_latency": 200.0,
            "cache.l2.hits": 60.0,
            "cache.l2.misses": 40.0,
            "cache.l3.misses": 20.0,
            "cache.l3.misses.structure": 12.0,
            "cache.l3.misses.property": 8.0,
            "dram.bus_accesses": 25.0,
            "prefetch.issued": 10.0,
            "prefetch.useful": 6.0,
        }
    )
    tel.emit(50, "prefetch_issue", line=1, core=0, dtype="structure")
    tel.on_window(120, 80)
    tel.record_phase("iteration:1", 150, 100)
    box["core.instructions"] = 1800.0
    tel.finish(260, 180)


class TestDeriveRates:
    def test_rates_from_one_interval(self):
        interval = {
            "cycles": 1000.0,
            "values": {
                "core.instructions": 2000.0,
                "cache.l3.misses": 10.0,
                "cache.l3.misses.structure": 6.0,
                "cache.l3.misses.property": 4.0,
                "cache.l2.hits": 30.0,
                "cache.l2.misses": 10.0,
                "dram.bus_accesses": 16.0,
                "prefetch.issued": 8.0,
                "prefetch.useful": 6.0,
                "core.miss_latency": 500.0,
                "core.exposed_latency": 100.0,
            },
        }
        rates = derive_rates(interval)
        assert rates["ipc"] == pytest.approx(2.0)
        assert rates["llc_mpki"] == pytest.approx(5.0)
        assert rates["llc_mpki_structure"] == pytest.approx(3.0)
        assert rates["llc_mpki_property"] == pytest.approx(2.0)
        assert rates["l2_hit_rate"] == pytest.approx(0.75)
        assert rates["bpki"] == pytest.approx(8.0)
        assert rates["dram_bytes_per_cycle"] == pytest.approx(16 * 64 / 1000)
        assert rates["pf_accuracy"] == pytest.approx(0.75)
        assert rates["mlp"] == pytest.approx(5.0)

    def test_empty_interval_is_all_zero(self):
        rates = derive_rates({"cycles": 0.0, "values": {}})
        assert set(rates.values()) == {0.0}


class TestTelemetryDict:
    def test_payload_shape_and_validation(self):
        tel = instrumented_session()
        drive(tel)
        payload = telemetry_dict(tel, meta={"label": "unit"})
        validate_telemetry_payload(payload, require_phases=True)
        assert payload["format"] == TELEMETRY_FORMAT
        assert payload["meta"] == {"label": "unit"}
        assert payload["interval_cycles"] == 100
        assert set(("cache", "core", "dram", "prefetch")) <= set(payload["families"])
        assert payload["phases"] == ["iteration:1"]
        assert [s["reason"] for s in payload["samples"]] == [
            "interval", "phase", "final",
        ]
        assert len(payload["intervals"]) == len(payload["samples"])
        # The final interval only accrued instructions.
        last = payload["intervals"][-1]
        assert last["values"]["core.instructions"] == pytest.approx(800.0)
        assert last["derived"]["ipc"] == pytest.approx(800.0 / 110.0)
        # JSON-safe end to end.
        json.dumps(payload)

    def test_event_block_and_exclusion(self):
        tel = instrumented_session()
        drive(tel)
        with_events = telemetry_dict(tel)
        assert with_events["events"]["emitted"] == 2  # prefetch_issue + phase
        kinds = [r["kind"] for r in with_events["events"]["records"]]
        assert kinds == ["prefetch_issue", "phase"]
        trimmed = telemetry_dict(tel, max_events=1)
        assert [r["kind"] for r in trimmed["events"]["records"]] == ["phase"]
        without = telemetry_dict(tel, include_events=False)
        assert "records" not in without["events"]
        assert without["events"]["counts_by_kind"] == {
            "prefetch_issue": 1, "phase": 1,
        }

    def test_validation_rejects_broken_payloads(self):
        tel = instrumented_session()
        drive(tel)
        good = telemetry_dict(tel)

        def corrupt(**changes):
            bad = json.loads(json.dumps(good))
            bad.update(changes)
            return bad

        with pytest.raises(ValueError, match="format"):
            validate_telemetry_payload(corrupt(format="nope"))
        with pytest.raises(ValueError, match="families missing"):
            validate_telemetry_payload(corrupt(families=["cache"]))
        with pytest.raises(ValueError, match="no samples"):
            validate_telemetry_payload(corrupt(samples=[], intervals=[]))
        with pytest.raises(ValueError, match="disagree"):
            validate_telemetry_payload(corrupt(intervals=[]))
        backwards = corrupt()
        backwards["samples"][0]["cycle"] = 1e12
        with pytest.raises(ValueError, match="backwards"):
            validate_telemetry_payload(backwards)
        unlabeled = corrupt()
        unlabeled["samples"][1]["phase"] = None
        with pytest.raises(ValueError, match="without a label"):
            validate_telemetry_payload(unlabeled)
        no_phases = corrupt(phases=[])
        validate_telemetry_payload(no_phases)  # fine without the flag
        with pytest.raises(ValueError, match="phase boundaries"):
            validate_telemetry_payload(no_phases, require_phases=True)


class TestWriters:
    @pytest.fixture()
    def payload(self):
        tel = instrumented_session()
        drive(tel)
        return telemetry_dict(tel, meta={"label": "unit", "trace": "t"})

    def test_json_round_trip(self, payload, tmp_path):
        path = write_json(payload, tmp_path / "p.json")
        assert json.loads(path.read_text()) == payload

    def test_csv_columns(self, payload, tmp_path):
        path = write_csv(payload, tmp_path / "p.csv")
        lines = path.read_text().splitlines()
        header = lines[0].split(",")
        assert header[:4] == ["cycle", "ref_index", "reason", "phase"]
        assert "core.instructions" in header
        assert "derived.ipc" in header
        assert len(lines) == 1 + len(payload["samples"])

    def test_html_is_self_contained(self, payload, tmp_path):
        path = write_html(payload, tmp_path / "p.html")
        text = path.read_text()
        assert "telemetry-data" in text
        assert "iteration:1" in text
        # The embedded JSON must not terminate the script block early.
        data = text.split('type="application/json">', 1)[1]
        assert "</script" not in data.split("</script>", 1)[0][:-1]

    def test_profile_bundle(self, payload, tmp_path):
        paths = write_profile(payload, tmp_path / "out")
        assert set(paths) == {"json", "csv", "html", "events"}
        assert all(p.exists() for p in paths.values())
        records = [
            json.loads(line)
            for line in paths["events"].read_text().splitlines()
        ]
        assert records == payload["events"]["records"]

    def test_profile_bundle_without_event_records(self, payload, tmp_path):
        tel = instrumented_session()
        drive(tel)
        slim = telemetry_dict(tel, include_events=False)
        paths = write_profile(slim, tmp_path / "slim")
        assert set(paths) == {"json", "csv", "html"}


class TestPrometheus:
    def test_render_groups_families_with_help_and_type(self):
        text = render_prom(
            {
                "sweep.retries": {"value": 3, "type": "counter"},
                "queue.depth": 7,
                "service.worker_busy[0]": {
                    "name": "service.worker_busy",
                    "value": 1,
                    "type": "gauge",
                    "labels": {"worker": 0},
                },
                "service.worker_busy[1]": {
                    "name": "service.worker_busy",
                    "value": 0,
                    "type": "gauge",
                    "labels": {"worker": 1},
                },
            }
        )
        lines = text.splitlines()
        # Dots sanitize to underscores; counters get the _total suffix.
        assert "repro_sweep_retries_total 3" in lines
        assert "repro_queue_depth 7" in lines
        # One HELP/TYPE pair per family, even with multiple series.
        assert lines.count("# TYPE repro_service_worker_busy gauge") == 1
        assert 'repro_service_worker_busy{worker="0"} 1' in lines
        assert 'repro_service_worker_busy{worker="1"} 0' in lines
        # Every family is declared before its samples.
        for i, line in enumerate(lines):
            if not line.startswith("#"):
                family = line.split("{")[0].split(" ")[0]
                assert "# TYPE %s" % family in "\n".join(lines[:i])

    def test_render_is_deterministic_and_sorted(self):
        samples = {"b.two": 2, "a.one": 1, "c.three": 3}
        first = render_prom(samples)
        second = render_prom(dict(reversed(list(samples.items()))))
        assert first == second
        names = [l.split()[0] for l in first.splitlines() if not l.startswith("#")]
        assert names == sorted(names)

    def test_render_rejects_bad_type_and_conflicts(self):
        with pytest.raises(ValueError):
            render_prom({"x": {"value": 1, "type": "histogram"}})
        with pytest.raises(ValueError):
            render_prom(
                {
                    "a": {"name": "same_total", "value": 1, "type": "gauge"},
                    "b": {"name": "same", "value": 1, "type": "counter"},
                }
            )

    def test_parse_round_trips_and_is_strict(self):
        text = render_prom(
            {
                "hits": {"value": 5, "type": "counter"},
                "depth": {"value": 2.5, "type": "gauge"},
                "busy": {"value": 1, "type": "gauge", "labels": {"worker": 0}},
            }
        )
        parsed = parse_prom_text(text)
        assert parsed["repro_hits_total"] == 5.0
        assert parsed["repro_depth"] == 2.5
        assert parsed['repro_busy{worker="0"}'] == 1.0
        with pytest.raises(ValueError):
            parse_prom_text("repro_orphan 1\n")  # sample without # TYPE
        with pytest.raises(ValueError):
            parse_prom_text("# TYPE bad thing\nbad 1\n")
        with pytest.raises(ValueError):
            parse_prom_text(text + "not a sample line\n")

    def test_write_prom(self, tmp_path):
        path = write_prom({"a": 1}, tmp_path / "out" / "metrics.prom")
        assert path.is_file()
        assert parse_prom_text(path.read_text()) == {"repro_a": 1.0}

    def test_telemetry_prom_samples(self, tmp_path):
        tel = instrumented_session()
        drive(tel)
        payload = telemetry_dict(
            tel, meta={"workload": "PR", "dataset": "kron", "setup": "droplet"}
        )
        samples = telemetry_prom_samples(payload)
        # Raw totals export as labelled counters...
        instr = samples["core.instructions"]
        assert instr["type"] == "counter"
        assert instr["labels"] == {
            "workload": "PR", "dataset": "kron", "setup": "droplet"
        }
        assert instr["value"] == payload["samples"][-1]["values"][
            "core.instructions"
        ]
        # ...and whole-run derived rates as gauges.
        assert samples["rate.ipc"]["type"] == "gauge"
        text = render_prom(samples)
        parsed = parse_prom_text(text)
        assert (
            parsed[
                'repro_core_instructions_total'
                '{dataset="kron",setup="droplet",workload="PR"}'
            ]
            == instr["value"]
        )

    def test_telemetry_prom_samples_empty_payload(self):
        assert telemetry_prom_samples({"samples": []}) == {}

"""IntervalSampler cadence and Timeline delta computation."""

from __future__ import annotations

import pytest

from repro.telemetry import IntervalSampler, MetricRegistry, Timeline


def make_sampler(interval=100):
    reg = MetricRegistry()
    box = {"v": 0.0}
    reg.gauge("core.cycles", lambda: box["v"])
    sampler = IntervalSampler(reg, interval_cycles=interval)
    return sampler, box


class TestIntervalSampler:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            IntervalSampler(MetricRegistry(), interval_cycles=0)

    def test_samples_only_on_interval_crossings(self):
        sampler, box = make_sampler(interval=100)
        assert sampler.on_window(50, 10) is None
        box["v"] = 120
        sample = sampler.on_window(120, 20)
        assert sample is not None and sample.reason == "interval"
        assert sample.cycle == 120 and sample.ref_index == 20
        assert sample.values == {"core.cycles": 120.0}
        # Not again until the *next* boundary.
        assert sampler.on_window(180, 30) is None
        assert sampler.on_window(205, 40) is not None

    def test_skipped_intervals_collapse_to_one_sample(self):
        sampler, _ = make_sampler(interval=100)
        # One window jumped from 0 to 950: a single sample, then the next
        # boundary is 1000 — no burst of identical snapshots.
        assert sampler.on_window(950, 5) is not None
        assert sampler.on_window(990, 6) is None
        assert sampler.on_window(1001, 7) is not None

    def test_phase_and_final_always_sample(self):
        sampler, _ = make_sampler(interval=10_000)
        sampler.on_phase("iteration:0", 50, 3)
        sampler.finish(80, 9)
        reasons = [s.reason for s in sampler.timeline]
        assert reasons == ["phase", "final"]
        phase = sampler.timeline.samples[0]
        assert phase.phase == "iteration:0" and phase.cycle == 50


class TestTimeline:
    def build(self):
        sampler, box = make_sampler(interval=100)
        box["v"] = 100
        sampler.on_window(100, 10)
        box["v"] = 150
        sampler.on_phase("iteration:1", 150, 15)
        box["v"] = 230
        sampler.finish(230, 23)
        return sampler.timeline

    def test_phase_queries(self):
        timeline = self.build()
        assert len(timeline) == 3
        assert timeline.phase_labels() == ["iteration:1"]
        assert [s.cycle for s in timeline.phases()] == [150]

    def test_metric_series(self):
        timeline = self.build()
        assert timeline.metric("core.cycles") == [
            (100.0, 100.0), (150.0, 150.0), (230.0, 230.0),
        ]
        assert timeline.metric("nope") == []

    def test_deltas_difference_consecutive_samples(self):
        deltas = self.build().deltas()
        assert [d["cycles"] for d in deltas] == [100.0, 50.0, 80.0]
        assert [d["values"]["core.cycles"] for d in deltas] == [100.0, 50.0, 80.0]
        assert [d["reason"] for d in deltas] == ["interval", "phase", "final"]
        assert deltas[1]["phase"] == "iteration:1"

    def test_empty_timeline_deltas(self):
        assert Timeline().deltas() == []

"""EventTrace ring buffer and TraceEvent serialization."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import EVENT_KINDS, EventTrace, TraceEvent


class TestTraceEvent:
    def test_fields_and_tuple_identity(self):
        ev = TraceEvent(100, "writeback", line=7, core=1, dtype="property")
        assert (ev.cycle, ev.kind, ev.line, ev.core) == (100, "writeback", 7, 1)
        assert ev.dtype == "property" and ev.detail is None
        assert tuple(ev) == (100, "writeback", 7, 1, "property", None)

    def test_as_dict_omits_none_fields(self):
        full = TraceEvent(5, "prefetch_issue", line=1, core=0, dtype="s", detail="d")
        assert set(full.as_dict()) == {
            "cycle", "kind", "line", "core", "dtype", "detail",
        }
        untimed = TraceEvent(None, "tlb_walk", core=2)
        assert untimed.as_dict() == {"kind": "tlb_walk", "core": 2}


class TestEventTrace:
    def test_emit_and_read_back(self):
        trace = EventTrace(capacity=8)
        trace.emit(1, "writeback", line=3)
        trace.emit(2, "dram_demand", line=4, core=0)
        assert trace.emitted == 2 and len(trace) == 2 and trace.dropped == 0
        kinds = [ev.kind for ev in trace.events()]
        assert kinds == ["writeback", "dram_demand"]
        assert trace.counts_by_kind() == {"writeback": 1, "dram_demand": 1}

    def test_ring_drops_oldest(self):
        trace = EventTrace(capacity=3)
        for cycle in range(5):
            trace.emit(cycle, "writeback")
        assert trace.emitted == 5 and len(trace) == 3 and trace.dropped == 2
        assert [ev.cycle for ev in trace.events()] == [2, 3, 4]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            EventTrace(capacity=0)

    def test_jsonl_round_trip(self, tmp_path):
        trace = EventTrace()
        trace.emit(1, "mpp_chase", line=9, dtype="structure")
        trace.emit(None, "prefetch_drop", detail="mtlb_fault")
        path = tmp_path / "events.jsonl"
        assert trace.write_jsonl(path) == 2
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines == trace.as_dicts()
        assert lines[1] == {"kind": "prefetch_drop", "detail": "mtlb_fault"}

    def test_machine_vocabulary_is_closed(self):
        # The instrumented machine only emits kinds from EVENT_KINDS;
        # keep the vocabulary explicit so JSONL consumers can rely on it.
        assert "phase" in EVENT_KINDS
        assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)

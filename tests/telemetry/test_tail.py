"""Incremental JSONL tailer: offsets, torn tails, rotation chasing."""

from __future__ import annotations

import json

from repro.telemetry.tail import ROTATED_SUFFIX, JsonlTailer


def append(path, *records, newline=True):
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        for i, record in enumerate(records):
            fh.write(json.dumps(record))
            if newline or i < len(records) - 1:
                fh.write("\n")


class TestJsonlTailer:
    def test_missing_file_polls_empty(self, tmp_path):
        tailer = JsonlTailer(tmp_path / "absent.jsonl")
        assert tailer.poll() == []
        assert tailer.offset == 0

    def test_incremental_reads_only_new_records(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append(path, {"n": 1}, {"n": 2})
        tailer = JsonlTailer(path)
        assert [r["n"] for r in tailer.poll()] == [1, 2]
        assert tailer.poll() == []  # nothing new
        append(path, {"n": 3})
        assert [r["n"] for r in tailer.poll()] == [3]
        assert tailer.records_seen == 3

    def test_torn_tail_left_for_next_poll(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append(path, {"n": 1})
        with open(path, "a") as fh:
            fh.write('{"n": 2')  # mid-write record, no newline
        tailer = JsonlTailer(path)
        assert [r["n"] for r in tailer.poll()] == [1]
        before = tailer.offset
        with open(path, "a") as fh:
            fh.write(', "done": true}\n')
        assert [r["n"] for r in tailer.poll()] == [2]
        assert tailer.offset > before

    def test_unparseable_complete_line_skipped_but_consumed(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"n": 1}\ngarbage line\n{"n": 2}\n')
        tailer = JsonlTailer(path)
        assert [r["n"] for r in tailer.poll()] == [1, 2]
        assert tailer.poll() == []

    def test_seek_resumes_from_byte_offset(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append(path, {"n": 1}, {"n": 2})
        first = JsonlTailer(path)
        first.poll()
        cursor = first.offset
        append(path, {"n": 3})
        resumed = JsonlTailer(path)
        resumed.seek(cursor)
        assert [r["n"] for r in resumed.poll()] == [3]

    def test_preexisting_rotated_history_read_first(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append(tmp_path / ("log.jsonl" + ROTATED_SUFFIX), {"n": 1}, {"n": 2})
        append(path, {"n": 3})
        tailer = JsonlTailer(path)
        assert [r["n"] for r in tailer.poll()] == [1, 2, 3]

    def test_skip_rotated_starts_at_live_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append(tmp_path / ("log.jsonl" + ROTATED_SUFFIX), {"n": 1})
        append(path, {"n": 2})
        tailer = JsonlTailer(path, skip_rotated=True)
        assert [r["n"] for r in tailer.poll()] == [2]

    def test_rotation_mid_stream_loses_nothing(self, tmp_path):
        path = tmp_path / "log.jsonl"
        append(path, {"n": 1}, {"n": 2})
        tailer = JsonlTailer(path)
        assert len(tailer.poll()) == 2
        # More records land, then the file rotates before the next poll,
        # and the fresh live file starts collecting.
        append(path, {"n": 3})
        path.rename(tmp_path / ("log.jsonl" + ROTATED_SUFFIX))
        append(path, {"n": 4})
        assert [r["n"] for r in tailer.poll()] == [3, 4]
        append(path, {"n": 5})
        assert [r["n"] for r in tailer.poll()] == [5]

"""MetricRegistry: naming, lookup, snapshots, collectors."""

from __future__ import annotations

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter("x").inc(-1)


class TestGauge:
    def test_reads_through_the_callable(self):
        box = {"v": 3}
        g = Gauge("x", lambda: box["v"])
        assert g.value == 3.0
        box["v"] = 7
        assert g.value == 7.0


class TestHistogram:
    def test_buckets_and_mean(self):
        h = Histogram("x", boundaries=(1, 4, 8))
        for v in (0.5, 1.0, 3.0, 9.0):
            h.observe(v)
        # Buckets are [lo, hi): <1 gets 0.5; [1,4) gets 1.0 and 3.0;
        # overflow gets 9.0.
        assert h.counts == [1, 2, 0, 1]
        assert h.value == pytest.approx(13.5 / 4)
        d = h.as_dict()
        assert d["count"] == 4 and d["sum"] == pytest.approx(13.5)
        assert d["boundaries"] == [1.0, 4.0, 8.0]

    def test_needs_boundaries(self):
        with pytest.raises(ValueError, match="boundary"):
            Histogram("x", boundaries=())


class TestRegistry:
    def test_registration_and_lookup(self):
        reg = MetricRegistry()
        reg.gauge("cache.l2.hits", lambda: 1)
        reg.gauge("cache.l2.misses", lambda: 2)
        reg.counter("dram.reads")
        assert len(reg) == 3
        assert "cache.l2.hits" in reg
        assert reg.names() == ["cache.l2.hits", "cache.l2.misses", "dram.reads"]
        assert reg.find("cache.l2") == ["cache.l2.hits", "cache.l2.misses"]
        assert reg.find("cache") == ["cache.l2.hits", "cache.l2.misses"]
        assert reg.families() == ["cache", "dram"]
        assert reg.get("dram.reads").kind == "counter"

    def test_find_does_not_match_partial_segments(self):
        reg = MetricRegistry()
        reg.gauge("cache.l2.hits", lambda: 1)
        reg.gauge("cache.l20.hits", lambda: 1)
        assert reg.find("cache.l2") == ["cache.l2.hits"]

    def test_duplicate_and_invalid_names_rejected(self):
        reg = MetricRegistry()
        reg.counter("a.b")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("a.b", lambda: 0)
        for bad in ("", ".a", "a."):
            with pytest.raises(ValueError, match="invalid"):
                reg.counter(bad)

    def test_snapshot_is_flat_and_live(self):
        reg = MetricRegistry()
        box = {"v": 1}
        reg.gauge("g", lambda: box["v"])
        c = reg.counter("c")
        h = reg.histogram("h", boundaries=(10,))
        h.observe(4)
        first = reg.snapshot()
        assert first == {"g": 1.0, "c": 0, "h": 4.0}
        box["v"] = 9
        c.inc(2)
        assert reg.snapshot() == {"g": 9.0, "c": 2, "h": 4.0}
        # Snapshots are independent dicts.
        assert first["g"] == 1.0

    def test_collectors_merge_into_snapshots(self):
        reg = MetricRegistry()
        reg.gauge("pf.total", lambda: 5)
        reg.add_collector(lambda: {"pf.stream.issued": 3})
        assert reg.snapshot() == {"pf.total": 5.0, "pf.stream.issued": 3.0}

    def test_collector_collision_raises_at_snapshot(self):
        reg = MetricRegistry()
        reg.gauge("pf.total", lambda: 5)
        reg.add_collector(lambda: {"pf.total": 1})
        with pytest.raises(ValueError, match="collides"):
            reg.snapshot()

    def test_histograms_export(self):
        reg = MetricRegistry()
        reg.histogram("core.mlp", boundaries=(1, 2))
        reg.gauge("g", lambda: 0)
        assert set(reg.histograms()) == {"core.mlp"}

"""Tests for the characterization analyses (§IV machinery)."""

import pytest

from repro.characterization import (
    hierarchy_usage,
    l2_sweep,
    llc_sweep,
    profile_dependencies,
    rob_sweep,
)
from repro.graph import kronecker
from repro.system import SystemConfig, simulate
from repro.trace import DataType
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def pr_run():
    # Sized so the property array (512 KB) exceeds the scaled LLC and the
    # structure array (~4 MB) exceeds every swept LLC — the paper's regime.
    g = kronecker(scale=17, edge_factor=8, seed=5, name="kron-s17e8")
    w = get_workload("PR")
    return w.run(g, max_refs=40_000, skip_refs=w.recommended_skip(g))


class TestRobSweep:
    def test_points_in_order(self, pr_run):
        points = rob_sweep(pr_run, rob_sizes=(128, 512))
        assert [p.rob_entries for p in points] == [128, 512]

    def test_observation1_small_speedup(self, pr_run):
        """Fig. 3: a 4x window changes performance by only a few percent."""
        base, big = rob_sweep(pr_run, rob_sizes=(128, 512))
        assert abs(big.speedup_vs(base) - 1.0) < 0.10

    def test_bandwidth_utilization_bounded(self, pr_run):
        for p in rob_sweep(pr_run, rob_sizes=(128,)):
            assert 0.0 <= p.bandwidth_utilization <= 1.5


class TestLLCSweep:
    def test_mpki_monotone_nonincreasing(self, pr_run):
        points = llc_sweep(pr_run, multipliers=(1, 2, 4))
        mpki = [p.llc_mpki for p in points]
        assert mpki == sorted(mpki, reverse=True)

    def test_property_benefits_most(self, pr_run):
        """Observation #5: a larger LLC mostly rescues property data."""
        points = llc_sweep(pr_run, multipliers=(1, 8))
        drop = {
            dt: points[0].offchip_fraction[dt] - points[1].offchip_fraction[dt]
            for dt in DataType
        }
        assert drop[DataType.PROPERTY] > drop[DataType.STRUCTURE]
        assert drop[DataType.PROPERTY] > drop[DataType.INTERMEDIATE]

    def test_structure_irresponsive(self, pr_run):
        """Observation #6: structure stays DRAM-bound at any LLC size."""
        points = llc_sweep(pr_run, multipliers=(1, 8))
        assert points[1].offchip_fraction[DataType.STRUCTURE] > 0.5 * points[
            0
        ].offchip_fraction[DataType.STRUCTURE]


class TestL2Sweep:
    def test_no_l2_point_present(self, pr_run):
        points = l2_sweep(pr_run)
        labels = [p.label for p in points]
        assert "no-L2" in labels and "1x" in labels

    def test_observation4_l2_insensitive(self, pr_run):
        """Fig. 4b: removing or doubling the L2 barely moves performance."""
        points = {p.label: p for p in l2_sweep(pr_run)}
        base = points["1x"]
        for label in ("no-L2", "2x", "1x-4xassoc"):
            assert abs(points[label].speedup_vs(base) - 1.0) < 0.10

    def test_l2_hit_rate_low_at_baseline(self, pr_run):
        points = {p.label: p for p in l2_sweep(pr_run)}
        assert points["1x"].l2_hit_rate < 0.40

    def test_requires_l2_in_base_config(self, pr_run):
        with pytest.raises(ValueError):
            l2_sweep(pr_run, config=SystemConfig.scaled_baseline().with_l2(None))


class TestHierarchyUsage:
    def test_fractions_sum_to_one(self, pr_run):
        res = simulate(pr_run)
        usage = hierarchy_usage(res)
        for dt in DataType:
            assert abs(sum(usage[dt].fractions.values()) - 1.0) < 1e-9

    def test_observation6_shapes(self, pr_run):
        """Structure: L1 + DRAM dominant, tiny L2. Property: notable DRAM."""
        usage = hierarchy_usage(simulate(pr_run))
        structure = usage[DataType.STRUCTURE].fractions
        assert structure["L1"] + structure["DRAM"] > 0.8
        assert structure["L2"] < 0.1
        prop = usage[DataType.PROPERTY].fractions
        assert prop["DRAM"] > 0.1

    def test_intermediate_mostly_onchip(self, pr_run):
        usage = hierarchy_usage(simulate(pr_run))
        inter = usage[DataType.INTERMEDIATE].fractions
        assert inter["DRAM"] < 0.25


class TestDependencyProfile:
    def test_row_fields(self, pr_run):
        profile = profile_dependencies(pr_run.trace)
        row = profile.as_row()
        assert 0 <= row["chained_loads_%"] <= 100
        assert row["mean_chain_len"] >= 2 or row["mean_chain_len"] == 0

    def test_property_is_consumer(self, pr_run):
        profile = profile_dependencies(pr_run.trace)
        roles = profile.roles
        assert roles.consumer_fraction(DataType.PROPERTY) > roles.producer_fraction(
            DataType.PROPERTY
        )
        assert roles.producer_fraction(DataType.STRUCTURE) > roles.consumer_fraction(
            DataType.STRUCTURE
        )

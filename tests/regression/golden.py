"""Golden-value computation for the simulator-core regression tests.

One small fixed-seed trace per paper workload (kron at scale_shift=-6,
3000 references), simulated under the no-prefetch baseline and DROPLET.
The pinned metrics — cycles, LLC MPKI, L2 hit rate and speedup over the
baseline — cover the timing model, the cache hierarchy, the data-type
classifier and the prefetcher in one number each.

Regenerate after an *intentional* model change with:

    PYTHONPATH=src python -m tests.regression.golden

and review the diff of ``golden_values.json`` like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).with_name("golden_values.json")

#: Trace identity of every golden run (also baked into the JSON header).
DATASET = "kron"
MAX_REFS = 3000
SCALE_SHIFT = -6
SETUPS = ("none", "droplet")

#: Pinned to full float64 precision; comparisons use rel=1e-9.
METRICS = ("cycles", "llc_mpki", "l2_hit_rate", "speedup_vs_none")


def compute_golden() -> dict[str, dict[str, float]]:
    """Simulate the golden matrix and return ``{workload/setup: metrics}``."""
    from repro.runtime import TraceSpec
    from repro.system.runner import compare_setups
    from repro.workloads.registry import PAPER_WORKLOAD_ORDER

    entries: dict[str, dict[str, float]] = {}
    for workload in PAPER_WORKLOAD_ORDER:
        spec = TraceSpec(
            workload, DATASET, max_refs=MAX_REFS, scale_shift=SCALE_SHIFT
        )
        results = compare_setups(spec.trace(), setups=SETUPS)
        base = results["none"]
        for setup in SETUPS:
            r = results[setup]
            entries["%s/%s" % (workload, setup)] = {
                "cycles": float(r.cycles),
                "llc_mpki": r.llc_mpki(),
                "l2_hit_rate": r.l2_hit_rate(),
                "speedup_vs_none": r.speedup_vs(base),
            }
    return entries


def load_golden() -> dict[str, dict[str, float]]:
    """The committed golden values."""
    return json.loads(GOLDEN_PATH.read_text())["values"]


def main() -> None:
    payload = {
        "comment": "pinned simulate() outputs; regenerate via "
        "`PYTHONPATH=src python -m tests.regression.golden`",
        "dataset": DATASET,
        "max_refs": MAX_REFS,
        "scale_shift": SCALE_SHIFT,
        "values": compute_golden(),
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print("wrote %s (%d entries)" % (GOLDEN_PATH, len(payload["values"])))


if __name__ == "__main__":
    main()

"""Pinned pareto-search report: the tuner's end-to-end regression gate.

The ``repro-pareto-v1`` report is deterministic, so it is pinned *byte
for byte* — schema drift, pruning-order drift and metric drift all fail
the same assertion.  Regenerate intentionally via
``PYTHONPATH=src python -m tests.regression.pareto_golden``.
"""

from __future__ import annotations

import json

import pytest

from .pareto_golden import (
    GOLDEN_PATH,
    MAX_REFS,
    compute_report,
    load_golden,
    make_search,
)


@pytest.fixture(scope="module")
def current(tmp_path_factory) -> dict:
    return compute_report(tmp_path_factory.mktemp("pareto-golden"))


def test_report_matches_the_pinned_golden_byte_for_byte(current):
    assert (
        json.dumps(current, indent=2, sort_keys=True) + "\n"
        == GOLDEN_PATH.read_text()
    )


def test_golden_frontier_matches_exhaustive_full_evaluation(
    current, tmp_path
):
    """Acceptance gate: halving found exactly the exhaustive frontier."""
    from repro.runtime import RetryPolicy, RunLedger, SweepRunner, TraceCache
    from repro.search.frontier import frontier_indices, objective_vector

    search = make_search()
    points = [
        c.point(
            search.workload,
            search.dataset,
            MAX_REFS,
            scale_shift=search.scale_shift,
        )
        for c in search.candidates
    ]
    runner = SweepRunner(
        workers=0,
        trace_cache=TraceCache(tmp_path / "traces"),
        return_full=False,
        retry=RetryPolicy(max_attempts=1),
        ledger=RunLedger("exhaustive", root=tmp_path / "runs"),
    )
    report = runner.run(points)
    report.raise_errors()
    vectors = [
        objective_vector(r.summary, search.objectives) for r in report.points
    ]
    expected = sorted(
        search.candidates[i].label
        for i in frontier_indices(vectors, search.objectives)
    )
    assert sorted(e["label"] for e in current["frontier"]) == expected


def test_golden_file_is_internally_consistent():
    golden = load_golden()
    assert golden["format"] == "repro-pareto-v1"
    counters = golden["counters"]
    assert counters["frontier_size"] == len(golden["frontier"])
    assert counters["dominated"] == len(golden["space"]) - len(
        golden["frontier"]
    )
    assert counters["rungs"] == len(golden["rungs"])
    windows = golden["halving"]["windows"]
    assert windows == sorted(windows) and windows[-1] == MAX_REFS

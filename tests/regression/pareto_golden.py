"""Golden ``repro-pareto-v1`` report for the micro design-space search.

One fixed search — PR/kron at scale_shift=-6, a 3000-reference full
window, the four-candidate ``setup={none,stream} x llc={1x,2x}`` space,
``cycles``/``area_mm2`` objectives — pinned byte for byte.  The report
is deterministic by construction (no wall-clock fields), so any drift
here means the tuner's pruning order, the report schema, the area model
or the simulator itself changed.

Regenerate after an *intentional* change with:

    PYTHONPATH=src python -m tests.regression.pareto_golden

and review the ``pareto_golden.json`` diff like any other code change.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

GOLDEN_PATH = Path(__file__).with_name("pareto_golden.json")

#: Search identity (mirrors the tuner test micro-space).
WORKLOAD = "PR"
DATASET = "kron"
MAX_REFS = 3000
SCALE_SHIFT = -6
SPACE = "setup=none,stream;llc=1,2"
OBJECTIVES = "cycles,area_mm2"


def make_search():
    """The golden search spec as a :class:`~repro.search.ParetoSearch`."""
    from repro.search import HalvingSchedule, ParetoSearch
    from repro.search.frontier import parse_objectives
    from repro.search.space import parse_space

    return ParetoSearch(
        workload=WORKLOAD,
        dataset=DATASET,
        candidates=parse_space(SPACE),
        objectives=parse_objectives(OBJECTIVES),
        schedule=HalvingSchedule(
            full_refs=MAX_REFS, rungs=3, eta=2, min_refs=500
        ),
        scale_shift=SCALE_SHIFT,
    )


def compute_report(root: Path | None = None) -> dict:
    """Run the golden search (in ``root`` or a throwaway tmpdir)."""
    from repro.runtime import RetryPolicy, RunLedger, SweepRunner, TraceCache

    def build(base: Path) -> dict:
        runner = SweepRunner(
            workers=0,
            trace_cache=TraceCache(base / "traces"),
            return_full=False,
            retry=RetryPolicy(max_attempts=1),
            ledger=RunLedger("golden", root=base / "runs"),
        )
        return make_search().run(runner)

    if root is not None:
        return build(root)
    with tempfile.TemporaryDirectory() as tmp:
        return build(Path(tmp))


def load_golden() -> dict:
    """The committed golden report."""
    return json.loads(GOLDEN_PATH.read_text())


def main() -> None:
    report = compute_report()
    GOLDEN_PATH.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(
        "wrote %s (frontier: %s)"
        % (GOLDEN_PATH, [e["label"] for e in report["frontier"]])
    )


if __name__ == "__main__":
    main()

"""Golden regression tests: pinned ``simulate()`` outputs per workload.

Any drift in the timing model, cache hierarchy, data-type classifier,
DROPLET engines, graph generators, tracing or allocator shows up here as
a precise metric diff.  If a change is *intentional*, regenerate the
golden file (see ``tests/regression/golden.py``) and commit the diff.
"""

from __future__ import annotations

import pytest

from repro.runtime import SweepPoint, SweepRunner
from repro.workloads.registry import PAPER_WORKLOAD_ORDER

from .golden import DATASET, MAX_REFS, SCALE_SHIFT, SETUPS, compute_golden, load_golden

REL_TOL = 1e-9


@pytest.fixture(scope="module")
def current() -> dict[str, dict[str, float]]:
    return compute_golden()


@pytest.fixture(scope="module")
def golden() -> dict[str, dict[str, float]]:
    return load_golden()


def test_golden_file_covers_the_full_matrix(golden):
    expected = {
        "%s/%s" % (w, s) for w in PAPER_WORKLOAD_ORDER for s in SETUPS
    }
    assert set(golden) == expected


@pytest.mark.parametrize("workload", PAPER_WORKLOAD_ORDER)
@pytest.mark.parametrize("setup", SETUPS)
def test_simulate_matches_golden(current, golden, workload, setup):
    key = "%s/%s" % (workload, setup)
    for metric, pinned in golden[key].items():
        assert current[key][metric] == pytest.approx(pinned, rel=REL_TOL), (
            "%s %s drifted" % (key, metric)
        )


def test_parallel_runner_matches_golden(golden, tmp_path):
    """The same matrix through SweepRunner(workers=2) hits the same pins."""
    points = [
        SweepPoint(
            workload=w,
            dataset=DATASET,
            setup=s,
            max_refs=MAX_REFS,
            scale_shift=SCALE_SHIFT,
        )
        for w in PAPER_WORKLOAD_ORDER
        for s in SETUPS
    ]
    from repro.runtime import TraceCache

    runner = SweepRunner(workers=2, trace_cache=TraceCache(tmp_path / "traces"))
    report = runner.run(points)
    report.raise_errors()
    by_key = report.by_key()
    for w in PAPER_WORKLOAD_ORDER:
        base = by_key[(w, DATASET, "none")].summary["cycles"]
        for s in SETUPS:
            pinned = golden["%s/%s" % (w, s)]
            summary = by_key[(w, DATASET, s)].summary
            assert summary["cycles"] == pytest.approx(pinned["cycles"], rel=REL_TOL)
            assert summary["llc_mpki"] == pytest.approx(
                pinned["llc_mpki"], rel=REL_TOL
            )
            assert summary["l2_hit_rate"] == pytest.approx(
                pinned["l2_hit_rate"], rel=REL_TOL
            )
            assert base / summary["cycles"] == pytest.approx(
                pinned["speedup_vs_none"], rel=REL_TOL
            )

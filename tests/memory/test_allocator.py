"""Unit tests for the graph data allocation layer."""

import numpy as np
import pytest

from repro.graph import build_csr
from repro.memory import AddressSpace, AllocationError, GraphLayout
from repro.trace import DataType


class TestAddressSpace:
    def test_alloc_page_aligned_and_mapped(self):
        space = AddressSpace()
        r = space.alloc("a", 100, DataType.PROPERTY, element_size=4)
        assert r.base % space.page_size == 0
        assert space.page_table.is_mapped(r.base)
        assert not space.page_table.is_structure(r.base)

    def test_structure_alloc_sets_bit(self):
        space = AddressSpace()
        r = space.alloc("s", 4096 * 3, DataType.STRUCTURE)
        assert space.page_table.is_structure(r.base)
        assert space.page_table.is_structure(r.end - 1)

    def test_regions_do_not_share_pages(self):
        space = AddressSpace()
        a = space.alloc("a", 8, DataType.STRUCTURE)
        b = space.alloc("b", 8, DataType.PROPERTY)
        assert a.base // space.page_size != b.base // space.page_size
        # The guard ensures the property page is not structure-tagged.
        assert not space.page_table.is_structure(b.base)

    def test_duplicate_name_rejected(self):
        space = AddressSpace()
        space.alloc("a", 8, DataType.PROPERTY)
        with pytest.raises(AllocationError):
            space.alloc("a", 8, DataType.PROPERTY)

    def test_bad_sizes_rejected(self):
        space = AddressSpace()
        with pytest.raises(AllocationError):
            space.alloc("z", 0, DataType.PROPERTY)
        with pytest.raises(AllocationError):
            space.alloc("y", 10, DataType.PROPERTY, element_size=4)

    def test_region_of(self):
        space = AddressSpace()
        r = space.alloc("a", 64, DataType.PROPERTY)
        assert space.region_of(r.base + 4) is r
        assert space.region_of(0) is None


class TestRegion:
    def test_addr_and_index_roundtrip(self):
        space = AddressSpace()
        r = space.alloc("a", 400, DataType.PROPERTY, element_size=4)
        addr = r.addr(13)
        assert r.index_of(addr) == 13
        assert r.contains(addr)

    def test_addr_bounds_checked(self):
        space = AddressSpace()
        r = space.alloc("a", 40, DataType.PROPERTY, element_size=4)
        with pytest.raises(IndexError):
            r.addr(10)
        with pytest.raises(IndexError):
            r.addr(-1)

    def test_index_of_outside_rejected(self):
        space = AddressSpace()
        r = space.alloc("a", 40, DataType.PROPERTY, element_size=4)
        with pytest.raises(IndexError):
            r.index_of(r.end)


class TestGraphLayout:
    def _layout(self, weighted=False):
        edges = np.array([(0, 1), (0, 2), (1, 2), (2, 0)])
        weights = np.array([1, 2, 3, 4]) if weighted else None
        g = build_csr(3, edges, weights=weights)
        return GraphLayout(g, property_names=("rank",)), g

    def test_region_kinds(self):
        layout, _ = self._layout()
        assert layout.offsets.kind is DataType.INTERMEDIATE
        assert layout.structure.kind is DataType.STRUCTURE
        assert layout.properties["rank"].kind is DataType.PROPERTY

    def test_structure_element_size(self):
        unweighted, _ = self._layout()
        weighted, _ = self._layout(weighted=True)
        assert unweighted.structure_element_size == 4
        assert weighted.structure_element_size == 8

    def test_address_arithmetic(self):
        layout, _ = self._layout()
        assert layout.offsets_addr(2) == layout.offsets.base + 16
        assert layout.structure_addr(3) == layout.structure.base + 12
        assert layout.property_addr("rank", 1) == layout.properties["rank"].base + 4

    def test_add_property_and_intermediate(self):
        layout, _ = self._layout()
        p = layout.add_property("extra")
        i = layout.add_intermediate("work", 10)
        assert p.kind is DataType.PROPERTY
        assert i.kind is DataType.INTERMEDIATE
        assert i.num_elements == 10

    def test_stack_region_exists(self):
        layout, _ = self._layout()
        assert layout.stack.kind is DataType.INTERMEDIATE

    def test_is_structure_line(self):
        layout, _ = self._layout()
        assert layout.is_structure_line(layout.structure.base)
        assert not layout.is_structure_line(layout.offsets.base)

    def test_scan_structure_line_reads_neighbor_ids(self):
        layout, g = self._layout()
        ids = layout.scan_structure_line(layout.structure.base)
        assert list(ids) == list(g.neighbors[:4])

    def test_scan_weighted_honours_granularity(self):
        layout, g = self._layout(weighted=True)
        # 8-byte entries: one 64 B line covers 8 entries; graph has 4.
        ids = layout.scan_structure_line(layout.structure.base)
        assert list(ids) == list(g.neighbors)

    def test_scan_outside_structure_is_empty(self):
        layout, _ = self._layout()
        assert len(layout.scan_structure_line(layout.offsets.base)) == 0

    def test_scan_partial_last_line(self):
        # 20 edges * 4B = 80 B: second line holds entries 16..19 only.
        edges = [(0, i % 3) for i in range(20)]
        g = build_csr(3, np.array(edges))
        layout = GraphLayout(g)
        ids = layout.scan_structure_line(layout.structure.base + 64)
        assert len(ids) == 4

"""Unit tests for the TLB model."""

import pytest

from repro.memory import TLB, PageFault, PageTable


def make_tlb(entries=4, walk_latency=50):
    pt = PageTable(4096)
    pt.map_range(0, 64 * 4096, is_structure=False)
    pt.map_range(64 * 4096, 64 * 4096, is_structure=True)
    return TLB(pt, entries=entries, walk_latency=walk_latency), pt


class TestTLB:
    def test_miss_then_hit(self):
        tlb, _ = make_tlb()
        paddr, is_struct, lat = tlb.translate(0x1000)
        assert (paddr, is_struct, lat) == (0x1000, False, 50)
        assert tlb.stats.misses == 1
        _, _, lat2 = tlb.translate(0x1004)
        assert lat2 == 0
        assert tlb.stats.hits == 1

    def test_structure_bit_cached(self):
        tlb, _ = make_tlb()
        _, is_struct, _ = tlb.translate(64 * 4096 + 8)
        assert is_struct
        assert tlb.cached_structure_bit(64 * 4096) is True
        assert tlb.cached_structure_bit(0) is None

    def test_lru_eviction(self):
        tlb, _ = make_tlb(entries=2)
        tlb.translate(0 * 4096)
        tlb.translate(1 * 4096)
        tlb.translate(0 * 4096)  # refresh page 0
        tlb.translate(2 * 4096)  # evicts page 1
        assert tlb.contains(0 * 4096)
        assert not tlb.contains(1 * 4096)
        assert len(tlb) == 2

    def test_page_fault_counted(self):
        tlb, _ = make_tlb()
        with pytest.raises(PageFault):
            tlb.translate(10**9)
        assert tlb.stats.faults == 1

    def test_invalidate_page(self):
        tlb, pt = make_tlb()
        tlb.translate(0)
        assert tlb.invalidate_page(pt.page_of(0))
        assert not tlb.contains(0)
        assert tlb.stats.invalidations == 1
        assert not tlb.invalidate_page(pt.page_of(0))  # already gone

    def test_invalidate_all(self):
        tlb, _ = make_tlb()
        tlb.translate(0)
        tlb.translate(4096)
        tlb.invalidate_all()
        assert len(tlb) == 0
        assert tlb.stats.invalidations == 2

    def test_hit_rate(self):
        tlb, _ = make_tlb()
        tlb.translate(0)
        tlb.translate(4)
        tlb.translate(8)
        assert abs(tlb.stats.hit_rate - 2 / 3) < 1e-9

    def test_resident_pages_lru_order(self):
        tlb, _ = make_tlb(entries=3)
        tlb.translate(0 * 4096)
        tlb.translate(1 * 4096)
        tlb.translate(0 * 4096)
        assert tlb.resident_pages() == [1, 0]

    def test_invalid_entries(self):
        pt = PageTable()
        with pytest.raises(ValueError):
            TLB(pt, entries=0)

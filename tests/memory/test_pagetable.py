"""Unit tests for the page table with structure bit."""

import pytest

from repro.memory import PageFault, PageTable


class TestPageTable:
    def test_map_and_translate(self):
        pt = PageTable(4096)
        pt.map_range(0x1000, 4096)
        assert pt.translate(0x1234) == 0x1234  # identity mapping

    def test_unmapped_faults(self):
        pt = PageTable()
        with pytest.raises(PageFault):
            pt.lookup(0x5000)
        assert not pt.is_mapped(0x5000)

    def test_map_range_page_count(self):
        pt = PageTable(4096)
        assert pt.map_range(0, 4096) == 1
        assert pt.map_range(8192, 4097) == 2  # crosses into a second page
        assert pt.map_range(100_000, 0) == 0

    def test_partial_page_mapping_covers_whole_page(self):
        pt = PageTable(4096)
        pt.map_range(4096 + 100, 8)
        assert pt.is_mapped(4096)
        assert pt.is_mapped(4096 + 4095)

    def test_structure_bit(self):
        pt = PageTable()
        pt.map_range(0, 4096, is_structure=True)
        pt.map_range(4096, 4096, is_structure=False)
        assert pt.is_structure(100)
        assert not pt.is_structure(5000)
        assert pt.structure_pages() == 1

    def test_structure_bit_of_unmapped_is_false(self):
        pt = PageTable()
        assert not pt.is_structure(0)

    def test_remap_updates_bit(self):
        pt = PageTable()
        pt.map_range(0, 4096, is_structure=False)
        pt.map_range(0, 4096, is_structure=True)
        assert pt.is_structure(0)
        assert len(pt) == 1

    def test_page_size_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            PageTable(page_size=3000)
        with pytest.raises(ValueError):
            PageTable(page_size=0)

    def test_negative_size_rejected(self):
        pt = PageTable()
        with pytest.raises(ValueError):
            pt.map_range(0, -1)

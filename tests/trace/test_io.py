"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.trace import (
    DataType,
    gather_trace,
    load_trace,
    save_trace,
)


class TestRoundTrip:
    def test_arrays_preserved(self, tmp_path):
        t = gather_trace(100)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        t2 = load_trace(path)
        assert np.array_equal(t2.addr, t.addr)
        assert np.array_equal(t2.kind, t.kind)
        assert np.array_equal(t2.is_load, t.is_load)
        assert np.array_equal(t2.dep, t.dep)
        assert np.array_equal(t2.gap, t.gap)

    def test_metadata_preserved(self, tmp_path):
        t = gather_trace(10, name="gather")
        path = tmp_path / "t.npz"
        save_trace(t, path)
        t2 = load_trace(path)
        assert t2.name == "gather"
        assert t2.core == 0

    def test_simulation_identical_after_roundtrip(self, tmp_path):
        from repro.system import Machine, SystemConfig

        t = gather_trace(2000)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        a = Machine(SystemConfig.scaled_baseline()).run(t)
        b = Machine(SystemConfig.scaled_baseline()).run(load_trace(path))
        assert a.cycles == b.cycles

    def test_phase_markers_preserved(self, tmp_path):
        t = gather_trace(10)
        t.phases = [(0, "warm"), (4, "iteration:0"), (10, "tail")]
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert load_trace(path).phases == t.phases

    def test_empty_phases_round_trip(self, tmp_path):
        t = gather_trace(5)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert load_trace(path).phases == []

    def test_version_check(self, tmp_path):
        t = gather_trace(5)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        data = dict(np.load(path))
        data["version"] = np.int64(999)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)

"""Tests for trace serialization."""

import numpy as np
import pytest

from repro.trace import (
    DataType,
    gather_trace,
    load_trace,
    save_trace,
)


class TestRoundTrip:
    def test_arrays_preserved(self, tmp_path):
        t = gather_trace(100)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        t2 = load_trace(path)
        assert np.array_equal(t2.addr, t.addr)
        assert np.array_equal(t2.kind, t.kind)
        assert np.array_equal(t2.is_load, t.is_load)
        assert np.array_equal(t2.dep, t.dep)
        assert np.array_equal(t2.gap, t.gap)

    def test_metadata_preserved(self, tmp_path):
        t = gather_trace(10, name="gather")
        path = tmp_path / "t.npz"
        save_trace(t, path)
        t2 = load_trace(path)
        assert t2.name == "gather"
        assert t2.core == 0

    def test_simulation_identical_after_roundtrip(self, tmp_path):
        from repro.system import Machine, SystemConfig

        t = gather_trace(2000)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        a = Machine(SystemConfig.scaled_baseline()).run(t)
        b = Machine(SystemConfig.scaled_baseline()).run(load_trace(path))
        assert a.cycles == b.cycles

    def test_phase_markers_preserved(self, tmp_path):
        t = gather_trace(10)
        t.phases = [(0, "warm"), (4, "iteration:0"), (10, "tail")]
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert load_trace(path).phases == t.phases

    def test_empty_phases_round_trip(self, tmp_path):
        t = gather_trace(5)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert load_trace(path).phases == []

    def test_version_check(self, tmp_path):
        t = gather_trace(5)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        data = dict(np.load(path))
        data["version"] = np.int64(999)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_trace(path)


class TestByteIdentity:
    """save -> load -> save must reproduce the archive byte for byte.

    Byte identity is what lets the on-disk trace cache be content-hashed
    and shared between machines; it covers every field of format v2 —
    the five parallel arrays (including dependency edges), name, core,
    and the phase-marker pair.
    """

    def _rich_trace(self):
        from repro.trace import DataType, TraceBuffer

        rng = np.random.default_rng(23)
        tb = TraceBuffer(name="rich")
        tb.mark_phase("warmup")
        prev = -1
        for i in range(500):
            addr = int(rng.integers(0, 1 << 16)) * 4
            if i == 250:
                tb.mark_phase("iteration:0")
            if rng.random() < 0.25:
                tb.store(addr, DataType.PROPERTY, gap=1)
            else:
                dep = prev if prev >= 0 and rng.random() < 0.5 else -1
                prev = tb.load(addr, DataType.STRUCTURE, dep=dep, gap=2)
        return tb.finalize()

    def test_save_load_save_byte_identical(self, tmp_path):
        t = self._rich_trace()
        assert t.phases and (t.dep >= 0).any() and (~t.is_load).any()
        first = tmp_path / "first.npz"
        second = tmp_path / "second.npz"
        save_trace(t, first)
        save_trace(load_trace(first), second)
        assert first.read_bytes() == second.read_bytes()

    def test_repeated_saves_byte_identical(self, tmp_path):
        t = self._rich_trace()
        a, b = tmp_path / "a.npz", tmp_path / "b.npz"
        save_trace(t, a)
        save_trace(t, b)
        assert a.read_bytes() == b.read_bytes()


class TestCorruptArchives:
    def test_truncated_file_raises_value_error(self, tmp_path):
        t = gather_trace(200)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        data = path.read_bytes()
        for cut in (len(data) // 2, 10, 1):
            trunc = tmp_path / ("trunc%d.npz" % cut)
            trunc.write_bytes(data[:cut])
            with pytest.raises(ValueError, match="truncated or corrupt"):
                load_trace(trunc)

    def test_garbage_bytes_raise_value_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00" * 512)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_trace(path)

    def test_missing_array_raises_value_error(self, tmp_path):
        t = gather_trace(20)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        data = dict(np.load(path))
        del data["dep"]
        np.savez(path, **data)
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_trace(path)

    def test_missing_file_keeps_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace(tmp_path / "nope.npz")

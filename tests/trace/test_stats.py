"""Unit tests for trace statistics and dependency roles."""

from repro.trace import (
    DataType,
    TraceBuffer,
    dependency_roles,
    gather_trace,
    trace_stats,
)


class TestTraceStats:
    def test_composition(self):
        tb = TraceBuffer()
        a = tb.load(0, DataType.STRUCTURE)
        tb.load(100, DataType.PROPERTY, dep=a)
        tb.store(200, DataType.PROPERTY)
        tb.load(300, DataType.INTERMEDIATE)
        s = trace_stats(tb.finalize())
        assert s.num_refs == 4
        assert s.num_loads == 3
        assert s.num_stores == 1
        assert s.refs_by_type[DataType.PROPERTY] == 2
        assert s.loads_with_dep == 1

    def test_fractions(self):
        t = gather_trace(10)
        s = trace_stats(t)
        assert abs(s.dependent_load_fraction - 0.5) < 1e-9
        assert abs(s.type_fraction(DataType.STRUCTURE) - 0.5) < 1e-9

    def test_empty_trace(self):
        s = trace_stats(TraceBuffer().finalize())
        assert s.dependent_load_fraction == 0.0
        assert s.type_fraction(DataType.PROPERTY) == 0.0


class TestDependencyRoles:
    def test_gather_polarity(self):
        """In the canonical gather pattern, structure produces and
        property consumes — the paper's Observation #3/Fig. 6."""
        roles = dependency_roles(gather_trace(50))
        assert roles.producer_fraction(DataType.STRUCTURE) == 1.0
        assert roles.consumer_fraction(DataType.STRUCTURE) == 0.0
        assert roles.consumer_fraction(DataType.PROPERTY) == 1.0
        assert roles.producer_fraction(DataType.PROPERTY) == 0.0

    def test_store_dep_not_counted_as_consumer_load(self):
        tb = TraceBuffer()
        a = tb.load(0, DataType.STRUCTURE)
        tb.store(100, DataType.PROPERTY, dep=a)
        roles = dependency_roles(tb.finalize())
        assert roles.consumers[DataType.PROPERTY] == 0
        # A load consumed by only a store is not a producer of a *load*.
        assert roles.producers[DataType.STRUCTURE] == 0

    def test_chain_middle_is_both(self):
        tb = TraceBuffer()
        a = tb.load(0, DataType.PROPERTY)
        b = tb.load(8, DataType.PROPERTY, dep=a)
        tb.load(16, DataType.PROPERTY, dep=b)
        roles = dependency_roles(tb.finalize())
        assert roles.producers[DataType.PROPERTY] == 2
        assert roles.consumers[DataType.PROPERTY] == 2

    def test_empty(self):
        roles = dependency_roles(TraceBuffer().finalize())
        assert roles.producer_fraction(DataType.STRUCTURE) == 0.0

"""Unit tests for synthetic trace generators."""

import numpy as np
import pytest

from repro.trace import (
    NO_DEP,
    DataType,
    gather_trace,
    mixed_type_trace,
    pointer_chase_trace,
    random_trace,
    stream_trace,
    strided_trace,
)


class TestStreamAndStride:
    def test_stream_addresses(self):
        t = stream_trace(5, start=100, step=4)
        assert list(t.addr) == [100, 104, 108, 112, 116]

    def test_stride(self):
        t = strided_trace(4, start=0, stride=64)
        assert list(t.addr) == [0, 64, 128, 192]

    def test_all_loads_no_deps(self):
        t = stream_trace(10)
        assert t.num_loads == 10
        assert (t.dep == NO_DEP).all()

    def test_kind(self):
        t = stream_trace(3, kind=DataType.PROPERTY)
        assert (t.kind == int(DataType.PROPERTY)).all()


class TestRandom:
    def test_within_region(self):
        t = random_trace(100, region_bytes=1 << 12, base=1 << 20)
        assert t.addr.min() >= 1 << 20
        assert t.addr.max() < (1 << 20) + (1 << 12)

    def test_aligned(self):
        t = random_trace(50)
        assert (t.addr % 4 == 0).all()

    def test_deterministic(self):
        a = random_trace(20, seed=1)
        b = random_trace(20, seed=1)
        assert np.array_equal(a.addr, b.addr)


class TestPointerChase:
    def test_full_chain(self):
        t = pointer_chase_trace(10)
        assert t.dep[0] == NO_DEP
        assert list(t.dep[1:]) == list(range(9))


class TestGather:
    def test_alternating_types(self):
        t = gather_trace(5)
        assert list(t.kind[::2]) == [int(DataType.STRUCTURE)] * 5
        assert list(t.kind[1::2]) == [int(DataType.PROPERTY)] * 5

    def test_property_depends_on_preceding_structure(self):
        t = gather_trace(5)
        assert list(t.dep[1::2]) == [0, 2, 4, 6, 8]


class TestMixed:
    def test_mix_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            mixed_type_trace(10, mix={DataType.STRUCTURE: 0.5})

    def test_default_mix_types_present(self):
        t = mixed_type_trace(300, seed=3)
        kinds = set(t.kind.tolist())
        assert kinds == {0, 1, 2}

    def test_structure_portion_streams(self):
        t = mixed_type_trace(200, seed=3)
        struct_addrs = t.addr[t.kind == int(DataType.STRUCTURE)]
        assert (np.diff(struct_addrs) == 4).all()

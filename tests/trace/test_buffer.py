"""Unit tests for TraceBuffer / Trace."""

import numpy as np
import pytest

from repro.trace import NO_DEP, DataType, Trace, TraceBuffer, TraceFull


class TestTraceBuffer:
    def test_append_returns_indices(self):
        tb = TraceBuffer()
        assert tb.load(0, DataType.STRUCTURE) == 0
        assert tb.store(4, DataType.PROPERTY) == 1
        assert len(tb) == 2

    def test_capacity_enforced(self):
        tb = TraceBuffer(capacity=2)
        tb.load(0, DataType.STRUCTURE)
        tb.load(4, DataType.STRUCTURE)
        assert tb.full
        with pytest.raises(TraceFull):
            tb.load(8, DataType.STRUCTURE)

    def test_zero_capacity(self):
        tb = TraceBuffer(capacity=0)
        with pytest.raises(TraceFull):
            tb.load(0, DataType.STRUCTURE)

    def test_dep_must_be_earlier(self):
        tb = TraceBuffer()
        tb.load(0, DataType.STRUCTURE)
        with pytest.raises(ValueError):
            tb.load(4, DataType.PROPERTY, dep=1)  # self-dep

    def test_finalize_arrays(self):
        tb = TraceBuffer(name="t")
        a = tb.load(0, DataType.STRUCTURE, gap=2)
        tb.load(100, DataType.PROPERTY, dep=a, gap=3)
        t = tb.finalize()
        assert t.name == "t"
        assert t.num_refs == 2
        assert t.num_instructions == 2 + 2 + 3
        assert t.dep[1] == 0
        assert t.kind.dtype == np.int8

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=-1)


class TestPhaseMarkers:
    def test_mark_phase_records_next_ref_index(self):
        tb = TraceBuffer()
        tb.mark_phase("iteration:0")
        tb.load(0, DataType.STRUCTURE)
        tb.load(4, DataType.STRUCTURE)
        tb.mark_phase("iteration:1")
        tb.load(8, DataType.STRUCTURE)
        assert tb.finalize().phases == [(0, "iteration:0"), (2, "iteration:1")]

    def test_marker_at_end_of_budget_is_kept(self):
        tb = TraceBuffer(capacity=1)
        tb.load(0, DataType.STRUCTURE)
        tb.mark_phase("tail")
        t = tb.finalize()
        assert t.phases == [(1, "tail")]  # index == len(trace) is legal

    def test_skip_window_markers_collapse_keep_last(self):
        tb = TraceBuffer(skip=2)
        tb.mark_phase("warmup:0")
        tb.load(0, DataType.STRUCTURE)
        tb.mark_phase("warmup:1")
        tb.load(4, DataType.STRUCTURE)
        tb.mark_phase("recorded")
        tb.load(8, DataType.STRUCTURE)
        # Both warm-up markers land at recorded index 0; only the last
        # same-index marker survives, so the trace opens in "recorded".
        assert tb.finalize().phases == [(0, "recorded")]

    def test_trace_validates_marker_ordering_and_range(self):
        def one_ref(phases):
            return Trace(
                addr=np.array([0], dtype=np.int64),
                kind=np.array([0], dtype=np.int8),
                is_load=np.array([True]),
                dep=np.array([NO_DEP], dtype=np.int64),
                gap=np.array([0], dtype=np.int32),
                phases=phases,
            )

        with pytest.raises(ValueError, match="outside trace"):
            one_ref([(5, "late")])
        with pytest.raises(ValueError, match="sorted"):
            one_ref([(1, "b"), (0, "a")])
        assert one_ref([(0, "a"), (1, "b")]).phases == [(0, "a"), (1, "b")]

    def test_slice_rebases_and_filters_markers(self):
        tb = TraceBuffer()
        for label, refs in (("a", 2), ("b", 2), ("c", 2)):
            tb.mark_phase(label)
            for _ in range(refs):
                tb.load(0, DataType.STRUCTURE)
        t = tb.finalize()
        assert t.slice(2, 6).phases == [(0, "b"), (2, "c")]
        # A marker at index == stop marks a boundary at the slice edge
        # and is kept; markers strictly outside are dropped.
        assert t.slice(3, 4).phases == [(1, "c")]
        assert t.slice(0, 2).phases == [(0, "a"), (2, "b")]
        assert t.slice(3, 3).phases == []


class TestSkip:
    def test_skip_drops_leading_refs(self):
        tb = TraceBuffer(skip=2)
        for i in range(4):
            tb.load(i * 4, DataType.STRUCTURE)
        t = tb.finalize()
        assert t.num_refs == 2
        assert list(t.addr) == [8, 12]

    def test_skip_rebases_deps(self):
        tb = TraceBuffer(skip=2)
        a = tb.load(0, DataType.STRUCTURE)   # skipped
        b = tb.load(4, DataType.STRUCTURE)   # skipped
        c = tb.load(8, DataType.STRUCTURE, dep=a)   # dep on skipped -> NO_DEP
        tb.load(100, DataType.PROPERTY, dep=c)      # dep on recorded -> 0
        t = tb.finalize()
        assert t.dep[0] == NO_DEP
        assert t.dep[1] == 0

    def test_capacity_counts_recorded_only(self):
        tb = TraceBuffer(capacity=2, skip=3)
        for i in range(5):
            tb.load(i, DataType.STRUCTURE)
        assert tb.full
        with pytest.raises(TraceFull):
            tb.load(99, DataType.STRUCTURE)

    def test_negative_skip_rejected(self):
        with pytest.raises(ValueError):
            TraceBuffer(skip=-1)


class TestTrace:
    def _trace(self):
        tb = TraceBuffer()
        a = tb.load(0, DataType.STRUCTURE, gap=1)
        tb.load(100, DataType.PROPERTY, dep=a, gap=2)
        tb.store(200, DataType.INTERMEDIATE, gap=0)
        return tb.finalize()

    def test_parallel_arrays_required(self):
        with pytest.raises(ValueError):
            Trace(
                addr=np.zeros(2, dtype=np.int64),
                kind=np.zeros(1, dtype=np.int8),
                is_load=np.ones(2, dtype=bool),
                dep=np.full(2, NO_DEP),
                gap=np.zeros(2, dtype=np.int32),
            )

    def test_counts(self):
        t = self._trace()
        assert t.num_loads == 2
        assert len(t) == 3

    def test_ref_materialization(self):
        t = self._trace()
        r = t.ref(1)
        assert r.kind is DataType.PROPERTY
        assert r.dep == 0
        assert r.addr == 100

    def test_refs_iterates_all(self):
        t = self._trace()
        assert [r.index for r in t.refs()] == [0, 1, 2]

    def test_slice_rebases_deps(self):
        t = self._trace()
        s = t.slice(1, 3)
        assert len(s) == 2
        assert s.dep[0] == NO_DEP  # producer fell outside the slice

"""Unit tests for trace records."""

import pytest

from repro.trace import NO_DEP, DataType, MemRef


class TestDataType:
    def test_values_stable(self):
        # The int values are baked into trace arrays; they must not move.
        assert int(DataType.STRUCTURE) == 0
        assert int(DataType.PROPERTY) == 1
        assert int(DataType.INTERMEDIATE) == 2

    def test_short_names(self):
        assert DataType.STRUCTURE.short_name == "structure"
        assert DataType.PROPERTY.short_name == "property"
        assert DataType.INTERMEDIATE.short_name == "intermediate"

    def test_int_keys_alias_enum_keys(self):
        # Stats dicts rely on IntEnum hashing like plain ints.
        d = {DataType.PROPERTY: 3}
        assert d[1] == 3


class TestMemRef:
    def test_construction(self):
        r = MemRef(index=5, addr=0x1000, kind=DataType.PROPERTY, is_load=True, dep=2, gap=1)
        assert r.cache_line() == 0x1000 // 64

    def test_cache_line_custom_size(self):
        r = MemRef(0, 256, DataType.STRUCTURE, True, NO_DEP, 0)
        assert r.cache_line(128) == 2

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            MemRef(0, -4, DataType.STRUCTURE, True, NO_DEP, 0)

    def test_forward_dep_rejected(self):
        with pytest.raises(ValueError):
            MemRef(3, 0, DataType.STRUCTURE, True, dep=3, gap=0)

    def test_negative_gap_rejected(self):
        with pytest.raises(ValueError):
            MemRef(0, 0, DataType.STRUCTURE, True, NO_DEP, gap=-1)

    def test_no_dep_allowed(self):
        r = MemRef(0, 0, DataType.STRUCTURE, True, NO_DEP, 0)
        assert r.dep == NO_DEP

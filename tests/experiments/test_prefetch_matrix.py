"""Tests for the shared prefetch simulation matrix."""

from repro.experiments import (
    ExperimentConfig,
    clear_matrix_cache,
    get_prefetch_matrix,
)


class TestMatrix:
    def test_full_key_coverage(self):
        clear_matrix_cache()
        cfg = ExperimentConfig.quick()
        matrix = get_prefetch_matrix(cfg, setups=("none", "droplet"))
        expected = {
            (w, d, s)
            for w in cfg.workloads
            for d in cfg.datasets
            for s in ("none", "droplet")
        }
        assert set(matrix) == expected

    def test_cached_across_calls(self):
        clear_matrix_cache()
        cfg = ExperimentConfig.quick()
        a = get_prefetch_matrix(cfg, setups=("none",))
        b = get_prefetch_matrix(cfg, setups=("none",))
        assert a is b

    def test_distinct_configs_distinct_matrices(self):
        clear_matrix_cache()
        a = get_prefetch_matrix(ExperimentConfig.quick(), setups=("none",))
        smaller = ExperimentConfig(
            workloads=("PR",), datasets=("kron",), max_refs=5_000, scale_shift=-3
        )
        b = get_prefetch_matrix(smaller, setups=("none",))
        assert a is not b

    def test_results_carry_setup_names(self):
        clear_matrix_cache()
        cfg = ExperimentConfig(
            workloads=("PR",), datasets=("kron",), max_refs=5_000, scale_shift=-3
        )
        matrix = get_prefetch_matrix(cfg, setups=("none", "stream"))
        assert matrix[("PR", "kron", "stream")].setup_name == "stream"
        assert matrix[("PR", "kron", "none")].setup_name == "none"

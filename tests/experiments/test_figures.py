"""Smoke + structural tests for every figure module (quick matrix).

These verify that each ``run_*`` produces the figure's rows and columns;
the paper-shape assertions on the *full* matrix live in
``tests/integration/test_paper_claims.py`` and the benchmark suite.
"""

import pytest

from repro.experiments import (
    ExperimentConfig,
    run_fig01,
    run_fig03,
    run_fig04a,
    run_fig04b,
    run_fig04c,
    run_fig05,
    run_fig07,
    run_fig11a,
    run_fig11b,
    run_fig12,
    run_fig13,
    run_fig14,
    run_fig15,
)


@pytest.fixture(scope="module")
def cfg():
    return ExperimentConfig.quick()


class TestCharacterizationFigures:
    def test_fig01(self, cfg):
        res = run_fig01(cfg)
        row = res.rows[0]
        assert "base" in row and "DRAM" in row
        assert 0 <= row["DRAM"] <= 1

    def test_fig03(self, cfg):
        res = run_fig03(cfg)
        assert len(res.rows) == len(cfg.workloads) * len(cfg.datasets)
        assert all("speedup" in row for row in res.rows)
        assert res.notes

    def test_fig04a(self, cfg):
        res = run_fig04a(cfg, multipliers=(1, 2))
        assert res.rows[-1]["workload"] == "MEAN"
        for row in res.rows:
            assert row["mpki_1x"] >= 0

    def test_fig04b(self, cfg):
        res = run_fig04b(cfg)
        for row in res.rows:
            assert "speedup_no-L2" in row
            assert "hit_1x" in row

    def test_fig04c(self, cfg):
        res = run_fig04c(cfg, multipliers=(1, 2))
        assert [row["llc"] for row in res.rows] == ["1x", "2x"]
        for row in res.rows:
            assert 0 <= row["property_offchip_%"] <= 100

    def test_fig05(self, cfg):
        res = run_fig05(cfg)
        for row in res.rows:
            assert 0 <= row["chained_loads_%"] <= 100
            assert row["prop_consumer_%"] >= row["prop_producer_%"]

    def test_fig07(self, cfg):
        res = run_fig07(cfg)
        # one row per (workload, dataset, type)
        assert len(res.rows) == len(cfg.workloads) * len(cfg.datasets) * 3
        for row in res.rows:
            total = row["L1_%"] + row["L2_%"] + row["L3_%"] + row["DRAM_%"]
            assert abs(total - 100) < 0.5


class TestEvaluationFigures:
    def test_fig11a_columns(self, cfg):
        res = run_fig11a(cfg, setups=("none", "stream", "droplet"))
        for row in res.rows:
            assert "stream" in row and "droplet" in row and "none" not in row

    def test_fig11b_geomean(self, cfg):
        res = run_fig11b(cfg, setups=("none", "droplet"))
        assert len(res.rows) == len(cfg.workloads)
        assert all(row["droplet"] > 0 for row in res.rows)

    def test_fig12(self, cfg):
        res = run_fig12(cfg)
        mean_rows = [r for r in res.rows if r["dataset"] == "MEAN"]
        assert len(mean_rows) == len(cfg.workloads)
        for row in res.rows:
            for setup in ("none", "stream", "streamMPP1", "droplet"):
                assert 0 <= row[setup] <= 1

    def test_fig13(self, cfg):
        res = run_fig13(cfg)
        for row in res.rows:
            assert row["droplet_struct"] <= row["none_struct"] + 1e-9

    def test_fig14(self, cfg):
        res = run_fig14(cfg)
        for row in res.rows:
            for key, value in row.items():
                if key.endswith("_struct") or key.endswith("_prop"):
                    assert 0 <= value <= 100

    def test_fig15(self, cfg):
        res = run_fig15(cfg)
        for row in res.rows:
            assert row["droplet"] >= 0
            assert "droplet_extra_%" in row

"""Tests for the table-rendering experiments (Tables I–V, §V-D)."""

from repro.experiments import (
    ExperimentConfig,
    run_overheads,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


class TestTable1:
    def test_components_present(self):
        res = run_table1()
        components = [row["component"] for row in res.rows]
        assert components == ["core", "L1", "L2", "L3", "DRAM"]

    def test_paper_scale_values(self):
        res = run_table1(paper_scale=True)
        values = {row["component"]: row["value"] for row in res.rows}
        assert "ROB=128" in values["core"]
        assert values["L3"].startswith("8192 KB")
        assert "device 120 cyc" in values["DRAM"]


class TestTable2:
    def test_five_algorithms(self):
        res = run_table2()
        assert [r["algorithm"] for r in res.rows] == ["BC", "BFS", "PR", "SSSP", "CC"]
        sssp = next(r for r in res.rows if r["algorithm"] == "SSSP")
        assert sssp["weighted"] == "yes"


class TestTable3:
    def test_dataset_rows(self):
        res = run_table3(ExperimentConfig.quick())
        assert {r["dataset"] for r in res.rows} == {"kron", "road"}
        kron = next(r for r in res.rows if r["dataset"] == "kron")
        road = next(r for r in res.rows if r["dataset"] == "road")
        # Topology classes: kron heavy-tailed, road not.
        assert kron["top1%_edge_share"] > road["top1%_edge_share"]


class TestTable4and5:
    def test_table4_decisions(self):
        res = run_table4()
        text = res.to_text()
        assert "L2" in text and "decoupled" in text.lower()

    def test_table5_parameters(self):
        res = run_table5()
        text = res.to_text()
        assert "distance 16" in text
        assert "512-entry VAB" in text
        assert "index table 512" in text


class TestOverheads:
    def test_report_rows(self):
        res = run_overheads()
        items = {row["item"]: row["value"] for row in res.rows}
        assert "MPP area" in items
        assert items["page table extra"].startswith("64 B")

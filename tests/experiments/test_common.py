"""Tests for the experiment infrastructure."""

import math

import pytest

from repro.experiments import (
    ExperimentConfig,
    ExperimentResult,
    clear_caches,
    geomean,
    get_graph,
    get_trace_run,
    render_table,
)


class TestExperimentConfig:
    def test_default_covers_paper_matrix(self):
        cfg = ExperimentConfig()
        assert cfg.workloads == ("BC", "BFS", "PR", "SSSP", "CC")
        assert cfg.datasets == ("kron", "urand", "orkut", "livejournal", "road")

    def test_quick_is_reduced(self):
        q = ExperimentConfig.quick()
        assert len(q.workloads) < 5
        assert q.max_refs < ExperimentConfig().max_refs

    def test_hashable(self):
        assert hash(ExperimentConfig.quick()) == hash(ExperimentConfig.quick())


class TestCaches:
    def test_graph_cache_returns_same_object(self):
        clear_caches()
        a = get_graph("kron", scale_shift=-5)
        b = get_graph("kron", scale_shift=-5)
        assert a is b

    def test_trace_cache(self):
        clear_caches()
        a = get_trace_run("PR", "kron", max_refs=2_000, scale_shift=-5)
        b = get_trace_run("PR", "kron", max_refs=2_000, scale_shift=-5)
        assert a is b
        c = get_trace_run("PR", "kron", max_refs=3_000, scale_shift=-5)
        assert c is not a

    def test_weighted_graph_for_sssp(self):
        clear_caches()
        run = get_trace_run("SSSP", "urand", max_refs=2_000, scale_shift=-5)
        assert run.weighted


class TestGeomean:
    def test_basic(self):
        assert abs(geomean([2, 8]) - 4.0) < 1e-9

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_is_nan(self):
        assert math.isnan(geomean([]))

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestRenderTable:
    def test_alignment_and_header(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 200, "b": "z"}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_missing_cells(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_empty(self):
        assert render_table([]) == "(no rows)"

    def test_float_formatting(self):
        text = render_table([{"x": 1.23456}])
        assert "1.235" in text


class TestExperimentResult:
    def test_to_text_includes_notes(self):
        r = ExperimentResult("figX", "demo", rows=[{"a": 1}], notes=["hello"])
        text = r.to_text()
        assert "figX" in text and "hello" in text

    def test_column(self):
        r = ExperimentResult("f", "t", rows=[{"a": 1}, {"a": 2}])
        assert r.column("a") == [1, 2]
        assert r.column("zz") == [None, None]

"""End-to-end integration: graph → workload → trace → machine → stats."""

import pytest

from repro.graph import make_dataset
from repro.system import SystemConfig, compare_setups, simulate
from repro.trace import DataType, trace_stats
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def kron():
    return make_dataset("kron", scale_shift=-2)


class TestPipeline:
    @pytest.mark.parametrize("name", ["BC", "BFS", "PR", "CC"])
    def test_each_workload_simulates(self, kron, name):
        w = get_workload(name)
        run = w.run(kron, max_refs=15_000, skip_refs=w.recommended_skip(kron))
        res = simulate(run)
        assert res.cycles > 0
        assert res.instructions == run.trace.num_instructions
        stats = trace_stats(run.trace)
        assert stats.refs_by_type[DataType.STRUCTURE] > 0

    def test_sssp_simulates(self):
        g = make_dataset("kron", scale_shift=-2, weighted=True)
        w = get_workload("SSSP")
        run = w.run(g, max_refs=15_000, skip_refs=w.recommended_skip(g))
        res = simulate(run, setup="droplet")
        # Weighted structure: the PAG scans at 8 B granularity.
        assert res.mpp is not None
        assert res.mpp.pag.scan_granularity == 8
        assert res.mpp.requests_generated > 0

    def test_all_setups_complete_on_one_run(self, kron):
        w = get_workload("PR")
        run = w.run(kron, max_refs=15_000, skip_refs=w.recommended_skip(kron))
        results = compare_setups(
            run,
            ("none", "ghb", "vldp", "stream", "streamMPP1", "droplet", "monoDROPLETL1"),
        )
        assert len(results) == 7
        for res in results.values():
            assert res.cycles > 0

    def test_multicore_machine_accepts_trace(self, kron):
        w = get_workload("PR")
        run = w.run(kron, max_refs=10_000)
        res = simulate(run, config=SystemConfig.scaled_baseline(num_cores=4))
        assert res.cycles > 0

    def test_mpp_stats_wired_through(self, kron):
        w = get_workload("PR")
        run = w.run(kron, max_refs=15_000, skip_refs=w.recommended_skip(kron))
        res = simulate(run, setup="droplet")
        assert res.mpp.structure_fills_seen > 0
        assert res.mpp.mtlb.tlb_stats.page_walks > 0

    def test_paper_scale_config_also_runs(self, kron):
        """The unscaled Table I machine is usable, just bigger."""
        w = get_workload("PR")
        run = w.run(kron, max_refs=10_000)
        res = simulate(run, config=SystemConfig.paper_baseline())
        assert res.cycles > 0

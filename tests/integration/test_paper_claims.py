"""The paper's headline claims, asserted on full-scale datasets.

These are *shape* assertions — who wins, in which regime — not absolute
numbers: our substrate is a scaled trace-driven simulator, not the
authors' SNIPER testbed.  EXPERIMENTS.md records the measured values
next to the paper's.
"""

import pytest

from repro.graph import make_dataset
from repro.system import compare_setups
from repro.trace import DataType
from repro.workloads import get_workload

ALL_SETUPS = ("none", "ghb", "vldp", "stream", "streamMPP1", "droplet", "monoDROPLETL1")


def run_matrix(workload, dataset, setups=ALL_SETUPS, max_refs=120_000):
    w = get_workload(workload)
    g = make_dataset(dataset, weighted=w.needs_weights)
    run = w.run(g, max_refs=max_refs, skip_refs=w.recommended_skip(g))
    return compare_setups(run, setups)


@pytest.fixture(scope="module")
def pr_kron():
    return run_matrix("PR", "kron")


@pytest.fixture(scope="module")
def cc_kron():
    return run_matrix("CC", "kron")


@pytest.fixture(scope="module")
def pr_road():
    return run_matrix("PR", "road", setups=("none", "stream", "streamMPP1", "droplet"))


class TestFig11Claims:
    def test_droplet_beats_every_baseline_on_pr_kron(self, pr_kron):
        droplet = pr_kron["droplet"]
        base = pr_kron["none"]
        for name in ("ghb", "vldp", "stream", "streamMPP1", "monoDROPLETL1"):
            assert droplet.speedup_vs(base) > pr_kron[name].speedup_vs(base), name

    def test_droplet_beats_every_baseline_on_cc_kron(self, cc_kron):
        droplet = cc_kron["droplet"]
        base = cc_kron["none"]
        for name in ("ghb", "vldp", "stream", "streamMPP1", "monoDROPLETL1"):
            assert droplet.speedup_vs(base) > cc_kron[name].speedup_vs(base), name

    def test_droplet_improvement_in_paper_band(self, pr_kron, cc_kron):
        """Paper band: +19% to +102% over no-prefetch (we allow wider)."""
        for results in (pr_kron, cc_kron):
            speedup = results["droplet"].speedup_vs(results["none"])
            assert 1.10 < speedup < 3.0

    def test_ghb_is_weakest(self, pr_kron):
        base = pr_kron["none"]
        ghb = pr_kron["ghb"].speedup_vs(base)
        for name in ("vldp", "stream", "streamMPP1", "droplet"):
            assert ghb <= pr_kron[name].speedup_vs(base) + 0.02

    def test_streammpp1_best_on_road(self, pr_road):
        """Paper: on the road dataset streamMPP1 is the best performer."""
        base = pr_road["none"]
        best = max(
            ("stream", "streamMPP1", "droplet"),
            key=lambda n: pr_road[n].speedup_vs(base),
        )
        assert best == "streamMPP1"

    def test_droplet_no_slowdown_on_road(self, pr_road):
        assert pr_road["droplet"].speedup_vs(pr_road["none"]) > 0.95

    def test_decoupling_beats_mono_l1(self, pr_kron, cc_kron):
        """Paper: DROPLET is 4-12.5% better than the monolithic L1 design."""
        for results in (pr_kron, cc_kron):
            droplet = results["droplet"].speedup_vs(results["none"])
            mono = results["monoDROPLETL1"].speedup_vs(results["none"])
            assert droplet > mono
            assert droplet / mono < 1.35  # same ballpark, not a blowout


class TestFig12Claims:
    def test_droplet_rescues_the_l2(self, pr_kron):
        """Paper: L2 hit rate jumps from ~10% to 62-76% for CC/PR."""
        assert pr_kron["none"].l2_hit_rate() < 0.25
        assert pr_kron["droplet"].l2_hit_rate() > 0.45


class TestFig13Claims:
    def test_stream_cuts_structure_not_property(self, pr_kron):
        none, stream = pr_kron["none"], pr_kron["stream"]
        s_cut = 1 - stream.llc_mpki(DataType.STRUCTURE) / none.llc_mpki(DataType.STRUCTURE)
        p_cut = 1 - stream.llc_mpki(DataType.PROPERTY) / none.llc_mpki(DataType.PROPERTY)
        assert s_cut > 0.4
        assert p_cut < s_cut

    def test_mpp_cuts_property(self, pr_kron):
        stream, smpp = pr_kron["stream"], pr_kron["streamMPP1"]
        assert smpp.llc_mpki(DataType.PROPERTY) < 0.8 * stream.llc_mpki(DataType.PROPERTY)

    def test_data_awareness_cuts_structure_further(self, pr_kron):
        smpp, droplet = pr_kron["streamMPP1"], pr_kron["droplet"]
        assert droplet.llc_mpki(DataType.STRUCTURE) < smpp.llc_mpki(DataType.STRUCTURE)


class TestFig14Claims:
    def test_droplet_accuracy_high_for_sequential_algorithms(self, pr_kron, cc_kron):
        """Paper: CC/PR structure accuracy 100%/95%, property 94%/95%."""
        for results in (pr_kron, cc_kron):
            droplet = results["droplet"]
            assert droplet.prefetch_accuracy(DataType.STRUCTURE) > 0.85
            assert droplet.prefetch_accuracy(DataType.PROPERTY) > 0.85

    def test_droplet_property_accuracy_beats_streammpp1(self, pr_kron):
        assert pr_kron["droplet"].prefetch_accuracy(
            DataType.PROPERTY
        ) > pr_kron["streamMPP1"].prefetch_accuracy(DataType.PROPERTY)


class TestFig15Claims:
    def test_droplet_bandwidth_overhead_low(self, pr_kron, cc_kron):
        """Paper: DROPLET adds only 6.5-19.9% bus traffic."""
        for results in (pr_kron, cc_kron):
            extra = results["droplet"].bpki() / results["none"].bpki() - 1.0
            assert extra < 0.30

    def test_conventional_stream_wastes_bandwidth(self, pr_kron):
        stream_extra = pr_kron["stream"].bpki() / pr_kron["none"].bpki() - 1.0
        droplet_extra = pr_kron["droplet"].bpki() / pr_kron["none"].bpki() - 1.0
        assert stream_extra > droplet_extra


class TestSSSPClaims:
    """SSSP-specific claims: weighted structure entries + DROPLET win."""

    @pytest.fixture(scope="class")
    def sssp_kron(self):
        return run_matrix("SSSP", "kron", setups=("none", "stream", "droplet"))

    def test_droplet_best_on_sssp_kron(self, sssp_kron):
        base = sssp_kron["none"]
        assert sssp_kron["droplet"].speedup_vs(base) > sssp_kron[
            "stream"
        ].speedup_vs(base)

    def test_weighted_scan_granularity(self, sssp_kron):
        """Paper §V-C2: 8 IDs per line for weighted graphs."""
        droplet = sssp_kron["droplet"]
        assert droplet.mpp.pag.scan_granularity == 8
        assert droplet.mpp.pag.max_ids_per_line() == 8


class TestObservationClaims:
    """The §IV observations, asserted end-to-end on one full-scale cell."""

    @pytest.fixture(scope="class")
    def pr_baseline(self):
        w = get_workload("PR")
        g = make_dataset("kron")
        run = w.run(g, max_refs=120_000, skip_refs=w.recommended_skip(g))
        from repro.system import simulate

        return run, simulate(run)

    def test_observation_2_chains_short(self, pr_baseline):
        from repro.core import chain_stats

        run, _ = pr_baseline
        cs = chain_stats(run.trace)
        assert cs.mean_chain_length < 3.0

    def test_observation_3_property_is_consumer(self, pr_baseline):
        from repro.trace import dependency_roles

        run, _ = pr_baseline
        roles = dependency_roles(run.trace)
        assert roles.consumer_fraction(DataType.PROPERTY) > 0.5
        assert roles.producer_fraction(DataType.STRUCTURE) > 0.5

    def test_observation_6_reuse_distances(self, pr_baseline):
        """Structure: effectively no in-window reuse. Property: reuse
        beyond the L2 stack depth but largely within the LLC."""
        from repro.cache import reuse_distance_profile
        from repro.system import SystemConfig

        run, _ = pr_baseline
        profile = reuse_distance_profile(run.trace)
        cfg = SystemConfig.scaled_baseline()
        l2_lines = cfg.l2.num_lines
        # Property reuses mostly exceed the L2's reach...
        assert profile.fraction_beyond(DataType.PROPERTY, l2_lines) > 0.5
        # ...but a solid share sits within the LLC.
        llc_lines = cfg.l3.num_lines
        assert profile.fraction_beyond(DataType.PROPERTY, llc_lines) < 0.7

    def test_observation_4_cycle_stack_dram_bound(self, pr_baseline):
        _, res = pr_baseline
        assert res.cycle_stack.dram_bound_fraction() > 0.3

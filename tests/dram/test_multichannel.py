"""Tests for the multiple-memory-controller extension (paper §VI)."""

import dataclasses

import pytest

from repro.dram import DRAMConfig, MultiChannelDRAM


class TestRouting:
    def test_lines_interleave_above_bank_bits(self):
        dram = MultiChannelDRAM(DRAMConfig(num_banks=16), num_mcs=2)
        # Lines within one bank-stripe share an MC; the next stripe flips.
        assert dram.mc_of(0) == dram.mc_of(15)
        assert dram.mc_of(0) != dram.mc_of(32)

    def test_all_mcs_reachable(self):
        dram = MultiChannelDRAM(num_mcs=4)
        homes = {dram.mc_of(line) for line in range(0, 4096, 16)}
        assert homes == {0, 1, 2, 3}

    def test_invalid_mc_count(self):
        with pytest.raises(ValueError):
            MultiChannelDRAM(num_mcs=0)


class TestParallelism:
    def test_channels_serve_in_parallel(self):
        dram = MultiChannelDRAM(DRAMConfig(num_banks=1, bank_busy=40), num_mcs=2)
        # Same bank index, different MCs: no queueing across channels.
        a = dram.access(0 * 2, now=0)   # mc 0
        b = dram.access(1 << dram._shift, now=0)  # mc 1
        assert a == b == dram.config.device_latency

    def test_same_channel_queues(self):
        dram = MultiChannelDRAM(DRAMConfig(num_banks=1, bank_busy=40), num_mcs=2)
        first = dram.access(0, now=0)
        second = dram.access(0, now=0)
        assert second == first + 40


class TestStats:
    def test_aggregation(self):
        dram = MultiChannelDRAM(num_mcs=2)
        dram.access(0, 0)
        dram.access(1 << dram._shift, 0, is_prefetch=True)
        dram.writeback(0, 0)
        stats = dram.stats
        assert stats.demand_reads == 1
        assert stats.prefetch_reads == 1
        assert stats.writebacks == 1

    def test_utilization_scales_with_mcs(self):
        one = MultiChannelDRAM(num_mcs=1)
        two = MultiChannelDRAM(num_mcs=2)
        for line in range(0, 320, 16):
            one.access(line, 0)
            two.access(line, 0)
        assert two.utilization(1000) == pytest.approx(one.utilization(1000) / 2)


class TestMachineIntegration:
    def test_forwarding_counted(self):
        from repro.graph import kronecker
        from repro.system import Machine, SystemConfig
        from repro.workloads import get_workload

        g = kronecker(scale=13, edge_factor=8, seed=5, name="kron-s13")
        w = get_workload("PR")
        run = w.run(g, max_refs=30_000, skip_refs=w.recommended_skip(g))
        cfg = dataclasses.replace(SystemConfig.scaled_baseline(), num_mcs=2)
        machine = Machine(cfg, run.layout, "droplet", "contrib")
        res = machine.run(run.trace)
        # Roughly half the chased property lines live behind the other MC.
        issued = res.ledger.counters["mpp"].total_issued
        assert issued > 0
        assert 0 < machine.mpp_forwarded
        assert machine.mpp_forwarded <= machine.mpp.requests_generated

    def test_single_mc_never_forwards(self):
        from repro.graph import kronecker
        from repro.system import Machine, SystemConfig
        from repro.workloads import get_workload

        g = kronecker(scale=12, edge_factor=8, seed=5, name="kron-s12")
        w = get_workload("PR")
        run = w.run(g, max_refs=10_000, skip_refs=w.recommended_skip(g))
        machine = Machine(SystemConfig.scaled_baseline(), run.layout, "droplet", "contrib")
        machine.run(run.trace)
        assert machine.mpp_forwarded == 0

    def test_multi_mc_results_comparable(self):
        """Interleaving across 2 MCs must not change residency behaviour."""
        from repro.graph import kronecker
        from repro.system import Machine, SystemConfig
        from repro.workloads import get_workload

        g = kronecker(scale=13, edge_factor=8, seed=5, name="kron-s13")
        w = get_workload("PR")
        run = w.run(g, max_refs=30_000, skip_refs=w.recommended_skip(g))
        one = Machine(SystemConfig.scaled_baseline(), run.layout, "none").run(run.trace)
        cfg2 = dataclasses.replace(SystemConfig.scaled_baseline(), num_mcs=2)
        two = Machine(cfg2, run.layout, "none").run(run.trace)
        assert one.llc_mpki() == two.llc_mpki()  # caches unaffected
        assert two.cycles <= one.cycles  # extra channels never hurt

"""Unit tests for the DRAM timing model."""

import pytest

from repro.dram import DRAMConfig, DRAMModel


class TestLatency:
    def test_isolated_access_sees_device_latency(self):
        dram = DRAMModel(DRAMConfig(device_latency=120, bank_busy=40))
        assert dram.access(0, now=0) == 120
        assert dram.stats.total_queue_delay == 0

    def test_same_bank_burst_queues(self):
        cfg = DRAMConfig(device_latency=120, bank_busy=40, num_banks=16)
        dram = DRAMModel(cfg)
        assert dram.access(0, now=0) == 120
        assert dram.access(16, now=0) == 160  # same bank, queued 40
        assert dram.access(32, now=0) == 200

    def test_different_banks_parallel(self):
        dram = DRAMModel()
        assert dram.access(0, now=0) == 120
        assert dram.access(1, now=0) == 120

    def test_bank_drains_over_time(self):
        dram = DRAMModel()
        dram.access(0, now=0)
        assert dram.access(16, now=1000) == 120  # long after the bank freed

    def test_negative_now_rejected(self):
        with pytest.raises(ValueError):
            DRAMModel().access(0, now=-1)


class TestDemandPriority:
    def test_prefetch_does_not_delay_demand(self):
        dram = DRAMModel()
        for _ in range(4):
            dram.access(0, now=0, is_prefetch=True)
        assert dram.access(0, now=0) == 120  # same bank: demand priority
        assert dram.access(3, now=0) == 120  # untouched bank

    def test_demand_delays_prefetch(self):
        dram = DRAMModel()
        dram.access(0, now=0)
        assert dram.access(16, now=0, is_prefetch=True) == 160

    def test_prefetch_queues_behind_prefetch(self):
        dram = DRAMModel()
        dram.access(0, now=0, is_prefetch=True)
        assert dram.access(16, now=0, is_prefetch=True) == 160


class TestStats:
    def test_read_classification(self):
        dram = DRAMModel()
        dram.access(0, 0)
        dram.access(1, 0, is_prefetch=True)
        dram.writeback(2, 0)
        assert dram.stats.demand_reads == 1
        assert dram.stats.prefetch_reads == 1
        assert dram.stats.writebacks == 1
        assert dram.stats.bus_accesses == 3

    def test_bpki(self):
        dram = DRAMModel()
        for i in range(10):
            dram.access(i, 0)
        assert dram.stats.bpki(1000) == 10.0
        assert dram.stats.bpki(0) == 0.0

    def test_bytes_and_utilization(self):
        dram = DRAMModel()
        for i in range(10):
            dram.access(i, 0)
        assert dram.stats.bytes_transferred() == 640
        assert dram.utilization(1000, peak_bytes_per_cycle=0.64) == 1.0
        assert dram.utilization(0) == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DRAMConfig(device_latency=0)

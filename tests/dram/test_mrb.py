"""Unit tests for the memory request buffer."""

import pytest

from repro.dram import MemoryRequestBuffer


class TestMRB:
    def test_enqueue_retire(self):
        mrb = MemoryRequestBuffer()
        mrb.enqueue(10, c_bit=True, core=2)
        entry = mrb.retire(10)
        assert entry.c_bit and entry.core == 2
        assert mrb.retire(10) is None

    def test_demand_merge_keeps_prefetch_tag(self):
        """A demand merging with an in-flight prefetch must not clear the
        C-bit, or the MPP would miss the structure fill (paper §V-C1)."""
        mrb = MemoryRequestBuffer()
        mrb.enqueue(5, c_bit=True, core=0)
        mrb.enqueue(5, c_bit=False, core=0)
        assert mrb.retire(5).c_bit

    def test_capacity_overflow_drops_oldest(self):
        mrb = MemoryRequestBuffer(capacity=2)
        mrb.enqueue(1, False, 0)
        mrb.enqueue(2, False, 0)
        mrb.enqueue(3, False, 0)
        assert mrb.overflows == 1
        assert mrb.retire(1) is None
        assert mrb.retire(3) is not None

    def test_len(self):
        mrb = MemoryRequestBuffer()
        mrb.enqueue(1, False, 0)
        mrb.enqueue(2, False, 0)
        assert len(mrb) == 2

    def test_storage_overhead(self):
        mrb = MemoryRequestBuffer(capacity=256)
        # Quad-core: 2 bits x 256 entries = 64 B (the paper's number).
        assert mrb.storage_overhead_bytes(num_cores=4) == 64
        assert mrb.storage_overhead_bytes(num_cores=1) == 32

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemoryRequestBuffer(capacity=0)

"""Tests for partitioned multi-core simulation."""

import pytest

from repro.graph import kronecker
from repro.system import SystemConfig, run_multicore
from repro.workloads import WorkloadError, get_workload


@pytest.fixture(scope="module")
def partitioned():
    g = kronecker(scale=12, edge_factor=8, seed=5, name="kron-s12")
    pr = get_workload("PR")
    runs = pr.run_partitioned(g, num_cores=4, max_refs=10_000)
    return g, runs


class TestPartitionedTracing:
    def test_one_trace_per_core(self, partitioned):
        _, runs = partitioned
        assert [r.trace.core for r in runs] == [0, 1, 2, 3]

    def test_shared_layout(self, partitioned):
        _, runs = partitioned
        assert all(r.layout is runs[0].layout for r in runs)

    def test_disjoint_vertex_work(self, partitioned):
        """Cores stream disjoint structure ranges of the shared arrays."""
        _, runs = partitioned
        ranges = []
        for r in runs:
            struct = r.trace.addr[r.trace.kind == 0]
            if len(struct):
                ranges.append((struct.min(), struct.max()))
        for (a_lo, a_hi), (b_lo, b_hi) in zip(ranges, ranges[1:]):
            assert a_hi <= b_lo or b_hi <= a_lo

    def test_frontier_workloads_refuse(self, partitioned):
        g, _ = partitioned
        with pytest.raises(WorkloadError):
            get_workload("BFS").run_partitioned(g, num_cores=2)

    def test_supports_partitioning_flags(self):
        assert get_workload("PR").supports_partitioning()
        assert get_workload("CC").supports_partitioning()
        assert not get_workload("BFS").supports_partitioning()
        assert not get_workload("SSSP").supports_partitioning()

    def test_invalid_core_count(self, partitioned):
        g, _ = partitioned
        with pytest.raises(ValueError):
            get_workload("PR").run_partitioned(g, num_cores=0)


class TestRunMulticore:
    def test_basic_run(self, partitioned):
        _, runs = partitioned
        result = run_multicore(
            [r.trace for r in runs],
            config=SystemConfig.scaled_baseline(num_cores=4),
            layout=runs[0].layout,
        )
        assert result.num_cores == 4
        assert result.cycles == max(result.per_core_cycles)
        assert result.instructions == sum(r.trace.num_instructions for r in runs)
        assert result.aggregate_ipc > 0

    def test_balanced_cores_finish_together(self, partitioned):
        _, runs = partitioned
        result = run_multicore(
            [r.trace for r in runs],
            config=SystemConfig.scaled_baseline(num_cores=4),
            layout=runs[0].layout,
        )
        lo, hi = min(result.per_core_cycles), max(result.per_core_cycles)
        assert hi / lo < 1.5  # near-equal partitions, near-equal clocks

    def test_prefetching_helps_multicore_too(self, partitioned):
        _, runs = partitioned
        cfg = SystemConfig.scaled_baseline(num_cores=4)
        traces = [r.trace for r in runs]
        base = run_multicore(traces, config=cfg, layout=runs[0].layout)
        droplet = run_multicore(
            traces,
            config=cfg,
            layout=runs[0].layout,
            setup="droplet",
            chased_property="contrib",
        )
        assert droplet.llc_mpki() <= base.llc_mpki()

    def test_duplicate_cores_rejected(self, partitioned):
        _, runs = partitioned
        t = runs[0].trace
        with pytest.raises(ValueError):
            run_multicore([t, t])

    def test_core_out_of_range_rejected(self, partitioned):
        _, runs = partitioned
        with pytest.raises(ValueError):
            run_multicore(
                [r.trace for r in runs],
                config=SystemConfig.scaled_baseline(num_cores=2),
                layout=runs[0].layout,
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            run_multicore([])

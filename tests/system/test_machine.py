"""Unit/behavioural tests for the Machine simulator."""

import pytest

from repro.system import Machine, SystemConfig
from repro.system.machine import RegionClassifier
from repro.trace import (
    DataType,
    gather_trace,
    pointer_chase_trace,
    random_trace,
    stream_trace,
)


def small_config(**kwargs):
    return SystemConfig.scaled_baseline(**kwargs)


class TestBasicRuns:
    def test_stream_trace_mostly_l1_hits(self):
        m = Machine(small_config())
        res = m.run(stream_trace(2000, step=4))
        l1 = m.hierarchy.l1s[0].stats
        assert l1.hit_rate > 0.9  # 16 words per line -> 15/16 hits
        assert res.cycles > 0
        assert res.instructions == 2000 * 3

    def test_random_trace_misses(self):
        m = Machine(small_config())
        res = m.run(random_trace(3000, region_bytes=1 << 22))
        assert res.llc_mpki() > 10
        assert res.cycle_stack.dram_bound_fraction() > 0.3

    def test_pointer_chase_has_mlp_one(self):
        m = Machine(small_config())
        res = m.run(pointer_chase_trace(2000, region_bytes=1 << 22))
        assert res.mlp < 1.5  # serial chains cannot overlap

    def test_random_trace_has_high_mlp(self):
        m = Machine(small_config())
        res = m.run(random_trace(3000, region_bytes=1 << 22))
        assert res.mlp > 3.0

    def test_deterministic(self):
        t = random_trace(1000)
        a = Machine(small_config()).run(t)
        b = Machine(small_config()).run(t)
        assert a.cycles == b.cycles

    def test_speedup_requires_same_trace(self):
        a = Machine(small_config()).run(stream_trace(100, name="x"))
        b = Machine(small_config()).run(stream_trace(100, name="y"))
        with pytest.raises(ValueError):
            a.speedup_vs(b)


class TestRobSensitivity:
    def test_bigger_rob_barely_helps_chained_code(self):
        """Observation #1: dependency-chained gathers don't speed up."""
        t = gather_trace(3000, property_region=1 << 22)
        small = Machine(small_config()).run(t)
        big = Machine(small_config().with_rob(512)).run(t)
        speedup = small.cycles / big.cycles
        assert speedup < 1.10

    def test_bigger_rob_is_a_wash_for_independent_misses(self):
        """More in-flight misses trade MSHR overlap against DRAM bank
        contention; the net effect stays within a few percent (Fig. 3)."""
        t = random_trace(2000, region_bytes=1 << 22)
        a = Machine(small_config().with_rob(32)).run(t)
        b = Machine(small_config().with_rob(128)).run(t)
        # No speedup from the larger window; a modest *slowdown* from extra
        # bank contention is allowed.
        assert b.cycles > 0.9 * a.cycles
        assert b.cycles < 1.25 * a.cycles


class TestCycleStack:
    def test_components_sum_to_total(self):
        res = Machine(small_config()).run(random_trace(2000))
        fr = res.cycle_stack.fractions()
        assert abs(sum(fr.values()) - 1.0) < 1e-9

    def test_l1_resident_trace_is_base_only(self):
        # 64 distinct bytes -> one line, always hits after the one cold miss.
        t = random_trace(8000, region_bytes=64)
        res = Machine(small_config()).run(t)
        assert res.cycle_stack.fractions()["base"] > 0.9


class TestStores:
    def test_stores_do_not_stall(self):
        from repro.trace import TraceBuffer

        tb = TraceBuffer()
        rng_addr = 0
        for i in range(2000):
            tb.store(rng_addr, DataType.PROPERTY, gap=2)
            rng_addr += 4096  # every store a fresh page: all DRAM misses
        res = Machine(small_config()).run(tb.finalize())
        # Store misses produce traffic but no exposed stall cycles.
        assert res.dram.stats.demand_reads == 2000
        assert res.cycle_stack.fractions()["base"] > 0.9


class TestRegionClassifier:
    def test_classifies_layout_regions(self, tiny_graph):
        from repro.memory import GraphLayout

        layout = GraphLayout(tiny_graph, property_names=("p",))
        rc = RegionClassifier(layout)
        assert rc.classify(layout.structure.base) == int(DataType.STRUCTURE)
        assert rc.classify(layout.properties["p"].base + 4) == int(DataType.PROPERTY)
        assert rc.classify(layout.offsets.base) == int(DataType.INTERMEDIATE)

    def test_unknown_is_intermediate(self):
        rc = RegionClassifier(None)
        assert rc.classify(12345) == int(DataType.INTERMEDIATE)

    def test_gap_between_regions(self, tiny_graph):
        from repro.memory import GraphLayout

        layout = GraphLayout(tiny_graph)
        rc = RegionClassifier(layout)
        assert rc.classify(0) == int(DataType.INTERMEDIATE)


class TestMPPRequiresLayout:
    def test_droplet_without_layout_rejected(self):
        with pytest.raises(ValueError):
            Machine(small_config(), layout=None, setup="droplet")

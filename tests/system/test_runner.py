"""Tests for the high-level simulate/compare_setups entry points."""

import pytest

from repro.graph import kronecker
from repro.system import SystemConfig, compare_setups, simulate
from repro.trace import DataType
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def pr_run():
    g = kronecker(scale=11, edge_factor=8, seed=5, name="kron-s11")
    return get_workload("PR").run(g, max_refs=25_000, skip_refs=7_000)


class TestSimulate:
    def test_returns_result(self, pr_run):
        res = simulate(pr_run, setup="none")
        assert res.setup_name == "none"
        assert res.trace_name == pr_run.trace.name
        assert res.cycles > 0
        assert res.ipc > 0

    def test_fresh_machine_per_call(self, pr_run):
        a = simulate(pr_run, setup="none")
        b = simulate(pr_run, setup="none")
        assert a.cycles == b.cycles
        assert a.hierarchy is not b.hierarchy

    def test_droplet_chases_gathered_property(self, pr_run):
        res = simulate(pr_run, setup="droplet")
        mpp_counters = res.ledger.counters.get("mpp")
        assert mpp_counters is not None
        assert mpp_counters.issued[DataType.PROPERTY] > 0
        assert mpp_counters.issued[DataType.STRUCTURE] == 0

    def test_custom_config(self, pr_run):
        small = simulate(
            pr_run, config=SystemConfig.scaled_baseline().with_llc_multiplier(4)
        )
        base = simulate(pr_run)
        assert small.llc_mpki() <= base.llc_mpki()


class TestCompareSetups:
    def test_keys_and_speedups(self, pr_run):
        results = compare_setups(pr_run, setups=("none", "stream", "droplet"))
        assert set(results) == {"none", "stream", "droplet"}
        base = results["none"]
        assert results["droplet"].speedup_vs(base) > 1.0

    def test_prefetchers_reduce_llc_mpki(self, pr_run):
        results = compare_setups(pr_run, setups=("none", "droplet"))
        assert results["droplet"].llc_mpki() < results["none"].llc_mpki()


class TestExtensions:
    def test_multi_property_flag(self, pr_run):
        single = simulate(pr_run, setup="droplet", multi_property=False)
        multi = simulate(pr_run, setup="droplet", multi_property=True)
        # PR declares a single gathered property, so both are identical.
        assert single.cycles == multi.cycles

    def test_bc_multi_property_chases_more(self):
        from repro.graph import kronecker
        from repro.workloads import get_workload

        g = kronecker(scale=12, edge_factor=8, seed=5, name="kron-s12")
        bc = get_workload("BC")
        run = bc.run(g, max_refs=20_000, skip_refs=bc.recommended_skip(g))
        single = simulate(run, setup="droplet", multi_property=False)
        multi = simulate(run, setup="droplet", multi_property=True)
        assert len(multi.mpp.pag.property_bases) == 3
        assert multi.mpp.pag.addresses_generated > single.mpp.pag.addresses_generated

    def test_edge_centric_run_through_simulate(self):
        from repro.graph import kronecker
        from repro.workloads import get_workload

        g = kronecker(scale=12, edge_factor=8, seed=5, name="kron-s12")
        pre = get_workload("PR-EDGE")
        run = pre.run(g, max_refs=20_000, skip_refs=pre.recommended_skip(g))
        res = simulate(run, setup="droplet")
        assert res.mpp is not None
        assert res.cycles > 0

"""Unit tests for SystemConfig (Table I fidelity and sweep helpers)."""

import pytest

from repro.system import CACHE_SCALE, SystemConfig, cacti_llc_latency


class TestPaperBaseline:
    """Table I values, asserted verbatim."""

    def test_core_parameters(self):
        c = SystemConfig.paper_baseline()
        assert c.num_cores == 4
        assert c.rob_entries == 128
        assert c.load_queue == 48
        assert c.store_queue == 32
        assert c.reservation_stations == 36
        assert c.dispatch_width == 4
        assert c.frequency_ghz == 2.66

    def test_cache_geometry(self):
        c = SystemConfig.paper_baseline()
        assert (c.l1.size_bytes, c.l1.associativity) == (32 * 1024, 8)
        assert (c.l2.size_bytes, c.l2.associativity) == (256 * 1024, 8)
        assert (c.l3.size_bytes, c.l3.associativity) == (8 * 1024 * 1024, 16)
        assert c.l1.line_size == c.l2.line_size == c.l3.line_size == 64

    def test_cache_latencies(self):
        c = SystemConfig.paper_baseline()
        assert (c.l1.data_latency, c.l1.tag_latency) == (4, 1)
        assert (c.l2.data_latency, c.l2.tag_latency) == (8, 3)
        assert (c.l3.data_latency, c.l3.tag_latency) == (30, 10)

    def test_dram_latency_is_45ns_at_2_66ghz(self):
        c = SystemConfig.paper_baseline()
        assert c.dram.device_latency == 120  # ~45 ns * 2.66 GHz


class TestScaledBaseline:
    def test_llc_scaled_by_cache_scale(self):
        c = SystemConfig.scaled_baseline()
        assert c.l3.size_bytes == 8 * 1024 * 1024 // CACHE_SCALE

    def test_private_levels_scaled_8x(self):
        c = SystemConfig.scaled_baseline()
        assert c.l1.size_bytes == 4 * 1024
        assert c.l2.size_bytes == 32 * 1024

    def test_latencies_preserved(self):
        paper = SystemConfig.paper_baseline()
        scaled = SystemConfig.scaled_baseline()
        assert scaled.l3.data_latency == paper.l3.data_latency
        assert scaled.dram == paper.dram
        assert scaled.rob_entries == paper.rob_entries

    def test_single_core_default(self):
        assert SystemConfig.scaled_baseline().num_cores == 1
        assert SystemConfig.scaled_baseline(num_cores=4).num_cores == 4


class TestDerivedLatencies:
    def test_service_latencies_monotone(self):
        c = SystemConfig.scaled_baseline()
        assert 0 < c.l2_service_latency < c.l3_service_latency

    def test_no_l2_latency(self):
        c = SystemConfig.scaled_baseline().with_l2(None)
        assert c.l2_service_latency == 0
        assert c.l3_service_latency == 40  # tag 10 + data 30, no L2 tags


class TestSweepHelpers:
    def test_with_rob(self):
        c = SystemConfig.scaled_baseline().with_rob(512)
        assert c.rob_entries == 512

    def test_with_llc_multiplier(self):
        base = SystemConfig.scaled_baseline()
        c = base.with_llc_multiplier(4)
        assert c.l3.size_bytes == base.l3.size_bytes * 4
        assert (c.l3.tag_latency, c.l3.data_latency) == cacti_llc_latency(4)

    def test_cacti_latencies_grow(self):
        lat = [cacti_llc_latency(m)[1] for m in (1, 2, 4, 8)]
        assert lat == sorted(lat)
        assert lat[0] == 30

    def test_cacti_unknown_multiplier(self):
        with pytest.raises(ValueError):
            cacti_llc_latency(3)

    def test_with_l2_none(self):
        c = SystemConfig.scaled_baseline().with_l2(None)
        assert c.l2 is None

    def test_with_l2_assoc(self):
        c = SystemConfig.scaled_baseline().with_l2(32 * 1024, associativity=32)
        assert c.l2.associativity == 32

    def test_invalid_core_params(self):
        with pytest.raises(ValueError):
            SystemConfig(num_cores=0)

    def test_config_hashable(self):
        a = SystemConfig.scaled_baseline()
        b = SystemConfig.scaled_baseline()
        assert hash(a) == hash(b)
        assert a == b

"""Behavioural tests for the machine's prefetch paths.

These exercise the DROPLET-specific flows with hand-built graphs and
traces: C-bit semantics, the MPP's on-chip copy path, late-prefetch
residual latency, the demand-trigger counterfactual, and multi-property
chasing.
"""

import numpy as np
import pytest

from repro.droplet.composite import PrefetchSetup, make_prefetch_setup
from repro.droplet.mpp import MPPConfig
from repro.graph import build_csr
from repro.memory import GraphLayout
from repro.prefetch.stream import DataAwareStreamer
from repro.system import Machine, SystemConfig
from repro.trace import DataType, TraceBuffer


def make_graph(num_vertices=4096, degree=16, seed=3):
    rng = np.random.default_rng(seed)
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), degree)
    dst = rng.integers(0, num_vertices, size=len(src), dtype=np.int64)
    return build_csr(num_vertices, np.stack([src, dst], axis=1))


def gather_run(layout, num_edges, prop="prop"):
    """A PR-like gather trace over the layout's structure array."""
    tb = TraceBuffer(name="gather")
    graph = layout.graph
    for j in range(num_edges):
        s = tb.load(layout.structure_addr(j), DataType.STRUCTURE, gap=1)
        v = int(graph.neighbors[j])
        tb.load(layout.property_addr(prop, v), DataType.PROPERTY, dep=s, gap=2)
    return tb.finalize()


@pytest.fixture
def layout():
    return GraphLayout(make_graph(), property_names=("prop", "extra"))


class TestCBitSemantics:
    def test_droplet_chases_only_structure_prefetches(self, layout):
        m = Machine(SystemConfig.scaled_baseline(), layout, "droplet", "prop")
        m.run(gather_run(layout, 4000))
        mpp = m.ledger.counters.get("mpp")
        assert mpp is not None and mpp.issued[DataType.PROPERTY] > 0
        # The data-aware streamer never issued non-structure prefetches,
        # so the MPP never chased garbage.
        ds = m.ledger.counters["dstream"]
        assert ds.issued[DataType.PROPERTY] == 0
        assert ds.issued[DataType.INTERMEDIATE] == 0

    def test_streammpp1_mpp_ignores_property_streams(self, layout):
        """The conventional streamer prefetches property lines too; MPP1's
        address-range check must not chase those."""
        m = Machine(SystemConfig.scaled_baseline(), layout, "streamMPP1", "prop")
        # A property-streaming trace (sequential property access).
        tb = TraceBuffer(name="propstream")
        for v in range(3000):
            tb.load(layout.property_addr("prop", v), DataType.PROPERTY, gap=2)
        m.run(tb.finalize())
        stream = m.ledger.counters.get("stream")
        assert stream is not None
        assert stream.issued[DataType.PROPERTY] > 0  # streamer caught it
        assert "mpp" not in m.ledger.counters or (
            m.ledger.counters["mpp"].total_issued == 0
        )


class TestMPPOnChipPath:
    def test_resident_property_is_copied_not_refetched(self, layout):
        """Property lines already in the LLC take the copy-to-L2 path: no
        DRAM prefetch read is issued for them."""
        graph = layout.graph
        # Narrow neighbor range -> property working set fits the LLC.
        small = build_csr(
            64, np.stack([
                np.repeat(np.arange(64, dtype=np.int64), 16),
                np.tile(np.arange(64, dtype=np.int64), 16),
            ], axis=1),
        )
        small_layout = GraphLayout(small, property_names=("prop",))
        m = Machine(SystemConfig.scaled_baseline(), small_layout, "droplet", "prop")
        trace = gather_run(small_layout, small.num_edges)
        res = m.run(trace)
        mpp = res.ledger.counters["mpp"]
        # Property prefetches were issued (as LLC->L2 copies)...
        assert mpp.issued[DataType.PROPERTY] > 0
        # ...but almost none of them went to DRAM: the DRAM prefetch reads
        # are accounted for by the structure streamer, because the
        # property targets were already on chip and took the copy path.
        dstream = res.ledger.counters["dstream"]
        property_dram_reads = res.dram.stats.prefetch_reads - dstream.total_issued
        assert property_dram_reads < mpp.issued[DataType.PROPERTY]


class TestDemandTriggerCounterfactual:
    def _setup(self, trigger):
        return PrefetchSetup(
            name="droplet-" + trigger,
            l2_prefetcher=DataAwareStreamer(),
            use_mpp=True,
            mpp_config=MPPConfig(identifies_structure=False),
            streamer_targets_l3_queue=True,
            mpp_trigger=trigger,
        )

    def test_demand_trigger_runs_and_is_not_faster(self):
        # The Table IV claim needs the paper's regime: the property array
        # must exceed the LLC, so prefetch timeliness actually matters.
        big_layout = GraphLayout(
            make_graph(num_vertices=1 << 17, degree=8), property_names=("prop",)
        )
        layout = big_layout
        trace = gather_run(layout, 30_000)
        base = Machine(SystemConfig.scaled_baseline(), layout, "none").run(trace)
        pf = Machine(
            SystemConfig.scaled_baseline(), layout, self._setup("prefetch"), "prop"
        ).run(trace)
        dm = Machine(
            SystemConfig.scaled_baseline(), layout, self._setup("demand"), "prop"
        ).run(trace)
        assert pf.cycles <= dm.cycles
        assert dm.ledger.counters["mpp"].total_issued > 0

    def test_invalid_trigger_rejected(self):
        with pytest.raises(ValueError):
            PrefetchSetup(
                name="x", l2_prefetcher=DataAwareStreamer(), mpp_trigger="sometimes"
            )


class TestMultiProperty:
    def test_machine_accepts_tuple_of_properties(self, layout):
        m = Machine(
            SystemConfig.scaled_baseline(), layout, "droplet", ("prop", "extra")
        )
        trace = gather_run(layout, 3000)
        res = m.run(trace)
        # Two arrays chased: roughly double the generated addresses.
        assert res.mpp.pag.addresses_generated > 0
        assert len(res.mpp.pag.property_bases) == 2


class TestLatePrefetch:
    def test_immediate_demand_pays_residual(self, layout):
        """A demand hitting a just-issued prefetch waits for the fill."""
        m = Machine(SystemConfig.scaled_baseline(), layout, "droplet", "prop")
        res = m.run(gather_run(layout, 6000))
        counters = res.ledger.counters
        total_late = sum(
            sum(c.late.values()) for c in counters.values()
        )
        total_useful = sum(c.total_useful for c in counters.values())
        # Some prefetches are late (structure ones racing the stream) but
        # most are timely.
        assert total_useful > 0
        assert total_late < total_useful

"""Property-based tests for the reuse-distance profiler.

The key cross-validation: a stack distance d misses in a fully
associative LRU cache of capacity C iff d >= C (Mattson).  We check the
profiler's distances against an actual LRU simulation on random streams.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import reuse_distance_profile
from repro.trace import DataType, TraceBuffer

streams = st.lists(st.integers(0, 20), min_size=1, max_size=200)


def trace_of(lines):
    tb = TraceBuffer()
    for line in lines:
        tb.load(line * 64, DataType.PROPERTY)
    return tb.finalize()


def lru_hits(lines, capacity):
    cache: OrderedDict[int, None] = OrderedDict()
    hits = []
    for line in lines:
        if line in cache:
            cache.move_to_end(line)
            hits.append(True)
        else:
            cache[line] = None
            if len(cache) > capacity:
                cache.popitem(last=False)
            hits.append(False)
    return hits


class TestMattsonEquivalence:
    @given(streams, st.integers(1, 8))
    @settings(max_examples=80, deadline=None)
    def test_distances_predict_lru_hits(self, lines, capacity):
        profile = reuse_distance_profile(trace_of(lines))
        distances = iter(profile.distances[DataType.PROPERTY])
        seen = set()
        actual = lru_hits(lines, capacity)
        for line, hit in zip(lines, actual):
            if line in seen:
                d = next(distances)
                assert hit == (d < capacity)
            else:
                assert not hit
                seen.add(line)

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_cold_plus_reuses_equals_accesses(self, lines):
        profile = reuse_distance_profile(trace_of(lines))
        total = profile.cold[DataType.PROPERTY] + len(
            profile.distances[DataType.PROPERTY]
        )
        assert total == len(lines)

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_cold_equals_distinct_lines(self, lines):
        profile = reuse_distance_profile(trace_of(lines))
        assert profile.cold[DataType.PROPERTY] == len(set(lines))

    @given(streams)
    @settings(max_examples=60, deadline=None)
    def test_distances_bounded_by_distinct_count(self, lines):
        profile = reuse_distance_profile(trace_of(lines))
        for d in profile.distances[DataType.PROPERTY]:
            assert 0 <= d < len(set(lines))

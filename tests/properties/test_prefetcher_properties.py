"""Property-based invariants shared by all prefetchers."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefetch import (
    DataAwareStreamer,
    GHBPrefetcher,
    NullPrefetcher,
    StreamPrefetcher,
    VLDPPrefetcher,
)
from repro.trace import DataType

PREFETCHERS = [
    NullPrefetcher,
    StreamPrefetcher,
    DataAwareStreamer,
    GHBPrefetcher,
    VLDPPrefetcher,
]

miss_streams = st.lists(
    st.tuples(
        st.integers(0, 1 << 14),                      # line
        st.sampled_from(list(DataType)),              # kind
    ),
    min_size=1,
    max_size=250,
)


class TestUniversalInvariants:
    @given(st.sampled_from(PREFETCHERS), miss_streams)
    @settings(max_examples=80, deadline=None)
    def test_candidates_are_nonnegative_lines(self, cls, stream):
        pf = cls()
        for line, kind in stream:
            for cand in pf.observe_miss(
                line, kind, kind is DataType.STRUCTURE, 0
            ):
                assert isinstance(cand, int)
                assert cand >= 0

    @given(st.sampled_from(PREFETCHERS), miss_streams)
    @settings(max_examples=50, deadline=None)
    def test_reset_restores_cold_behaviour(self, cls, stream):
        """After reset, the first replay step matches a fresh instance."""
        trained = cls()
        for line, kind in stream:
            trained.observe_miss(line, kind, kind is DataType.STRUCTURE, 0)
        trained.reset()
        fresh = cls()
        line, kind = stream[0]
        assert trained.observe_miss(
            line, kind, kind is DataType.STRUCTURE, 0
        ) == fresh.observe_miss(line, kind, kind is DataType.STRUCTURE, 0)

    @given(miss_streams)
    @settings(max_examples=50, deadline=None)
    def test_data_aware_streamer_subset_of_conventional_trackers(self, stream):
        """The structure-only streamer never tracks more pages than the
        type-blind one fed the same miss stream."""
        conventional = StreamPrefetcher()
        aware = DataAwareStreamer()
        for line, kind in stream:
            is_structure = kind is DataType.STRUCTURE
            conventional.observe_miss(line, kind, is_structure, 0)
            aware.observe_miss(line, kind, is_structure, 0)
        assert aware.tracker_allocations <= conventional.tracker_allocations

    @given(miss_streams)
    @settings(max_examples=50, deadline=None)
    def test_streamer_prefetches_stay_near_misses(self, stream):
        """Stream candidates never run beyond distance of the trigger."""
        pf = StreamPrefetcher(distance=16)
        for line, kind in stream:
            for cand in pf.observe_miss(line, kind, True, 0):
                assert abs(cand - line) <= 16

    @given(miss_streams)
    @settings(max_examples=50, deadline=None)
    def test_vldp_candidates_stay_in_page(self, stream):
        pf = VLDPPrefetcher(page_lines=64)
        for line, kind in stream:
            for cand in pf.observe_miss(line, kind, False, 0):
                assert cand // 64 == line // 64

"""Property-based tests for the graph substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_csr


@st.composite
def edge_lists(draw, max_vertices=30, max_edges=120):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2)


class TestCSRInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_edge_count_preserved_without_dedup(self, data):
        n, edges = data
        g = build_csr(n, edges)
        assert g.num_edges == len(edges)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degrees_sum_to_edges(self, data):
        n, edges = data
        g = build_csr(n, edges)
        assert g.out_degrees().sum() == g.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_adjacency_matches_input_multiset(self, data):
        n, edges = data
        g = build_csr(n, edges)
        rebuilt = sorted(g.edges())
        assert rebuilt == sorted(map(tuple, edges.tolist()))

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, data):
        n, edges = data
        g = build_csr(n, edges, dedup=True)
        tt = g.transpose().transpose()
        assert np.array_equal(tt.offsets, g.offsets)
        assert sorted(tt.edges()) == sorted(g.edges())

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_transpose_preserves_edge_count(self, data):
        n, edges = data
        g = build_csr(n, edges)
        assert g.transpose().num_edges == g.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_symmetrized_is_symmetric(self, data):
        n, edges = data
        g = build_csr(n, edges, dedup=True)
        assert g.symmetrized().is_symmetric()

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_offsets_well_formed(self, data):
        n, edges = data
        g = build_csr(n, edges)
        assert g.offsets[0] == 0
        assert g.offsets[-1] == g.num_edges
        assert (np.diff(g.offsets) >= 0).all()
        assert len(g.offsets) == n + 1

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_transpose_degree_sum_matches_edge_count(self, data):
        n, edges = data
        g = build_csr(n, edges)
        assert g.transpose().out_degrees().sum() == g.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_weighted_round_trip_preserves_edge_weights(self, data):
        n, edges = data
        weights = np.arange(1, len(edges) + 1, dtype=np.int64)
        g = build_csr(n, edges, weights=weights)
        rebuilt = []
        for u in range(n):
            for v, w in zip(g.neighbors_of(u).tolist(), g.weights_of(u).tolist()):
                rebuilt.append((u, v, int(w)))
        original = [
            (int(u), int(v), int(w)) for (u, v), w in zip(edges.tolist(), weights)
        ]
        assert sorted(rebuilt) == sorted(original)

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_dedup_leaves_unique_sorted_lists(self, data):
        n, edges = data
        g = build_csr(n, edges, dedup=True)
        for v in range(n):
            nbrs = g.neighbors_of(v)
            assert len(set(nbrs.tolist())) == len(nbrs)
            assert (np.diff(nbrs) > 0).all() if len(nbrs) > 1 else True

"""Property-based tests for the cache models.

Two classic invariants are checked against random access streams:

* **LRU inclusion property** — a larger (same-geometry) LRU cache's
  contents always include a smaller one's, hence hits(bigger) ⊇
  hits(smaller);
* **hierarchy inclusivity** — every line resident in a private cache is
  resident in the shared LLC, under any interleaving of loads/stores
  from any core.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig, CacheHierarchy
from repro.trace import DataType

lines = st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300)


class TestLRUProperties:
    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_stack_inclusion_of_hit_counts(self, stream):
        """Mattson at counter granularity: a larger LRU cache's cumulative
        hit count dominates a smaller one's after every single access."""
        sizes = (2, 4, 8)
        caches = [Cache(CacheConfig("c%d" % s, s * 64, s, 64)) for s in sizes]
        hit_counts = [0] * len(sizes)
        for line in stream:
            for i, c in enumerate(caches):
                if c.lookup(line) is not None:
                    hit_counts[i] += 1
                c.insert(line)
            assert hit_counts == sorted(hit_counts)

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_mattson_inclusion(self, stream):
        small = Cache(CacheConfig("s", 4 * 64, 4, 64))   # 4 lines, 1 set
        big = Cache(CacheConfig("b", 8 * 64, 8, 64))     # 8 lines, 1 set
        for line in stream:
            s_hit = small.lookup(line) is not None
            b_hit = big.lookup(line) is not None
            if s_hit:
                assert b_hit  # a hit in the small cache must hit in the big
            small.insert(line)
            big.insert(line)

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, stream):
        c = Cache(CacheConfig("c", 8 * 64, 2, 64))
        for line in stream:
            c.insert(line)
            assert c.occupancy() <= c.config.num_lines
            for s in c._sets:
                assert len(s) <= c.config.associativity

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_resident_after_insert(self, stream):
        c = Cache(CacheConfig("c", 8 * 64, 2, 64))
        for line in stream:
            c.insert(line)
            assert c.contains(line)


accesses = st.lists(
    st.tuples(
        st.integers(0, 1),           # core
        st.integers(0, 63),          # line
        st.booleans(),               # is_store
        st.booleans(),               # via prefetch
    ),
    min_size=1,
    max_size=250,
)


class TestHierarchyProperties:
    @given(accesses)
    @settings(max_examples=50, deadline=None)
    def test_inclusivity_invariant(self, stream):
        h = CacheHierarchy(
            CacheConfig("L1", 2 * 64, 2, 64),
            CacheConfig("L2", 4 * 64, 2, 64),
            CacheConfig("L3", 16 * 64, 4, 64),
            num_cores=2,
        )
        for core, line, is_store, prefetch in stream:
            if prefetch:
                h.prefetch_fill(core, line, DataType.PROPERTY)
            else:
                h.demand_access(core, line, DataType.PROPERTY, is_store=is_store)
            for c in range(2):
                for resident in h.l1s[c].resident_lines():
                    assert h.l3.contains(resident)
                for resident in h.l2s[c].resident_lines():
                    assert h.l3.contains(resident)

    @given(accesses)
    @settings(max_examples=50, deadline=None)
    def test_demand_always_ends_resident_in_l1(self, stream):
        h = CacheHierarchy(
            CacheConfig("L1", 2 * 64, 2, 64),
            CacheConfig("L2", 4 * 64, 2, 64),
            CacheConfig("L3", 16 * 64, 4, 64),
            num_cores=2,
        )
        for core, line, is_store, _ in stream:
            h.demand_access(core, line, DataType.PROPERTY, is_store=is_store)
            assert h.l1s[core].contains(line)

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_stats_accounting_consistent(self, stream):
        h = CacheHierarchy(
            CacheConfig("L1", 2 * 64, 2, 64),
            CacheConfig("L2", 4 * 64, 2, 64),
            CacheConfig("L3", 16 * 64, 4, 64),
            num_cores=2,
        )
        demands = 0
        for core, line, is_store, prefetch in stream:
            if not prefetch:
                h.demand_access(core, line, DataType.PROPERTY, is_store=is_store)
                demands += 1
        l1_total = sum(c.stats.total_accesses for c in h.l1s)
        assert l1_total == demands
        # Every L1 miss becomes exactly one L2 access, and so on down.
        l1_misses = sum(c.stats.total_misses for c in h.l1s)
        l2_total = sum(c.stats.total_accesses for c in h.l2s)
        assert l2_total == l1_misses
        l2_misses = sum(c.stats.total_misses for c in h.l2s)
        assert h.l3.stats.total_accesses == l2_misses

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_accesses_split_into_hits_and_misses_per_type(self, stream):
        h = CacheHierarchy(
            CacheConfig("L1", 2 * 64, 2, 64),
            CacheConfig("L2", 4 * 64, 2, 64),
            CacheConfig("L3", 16 * 64, 4, 64),
            num_cores=2,
        )
        per_type = {dt: 0 for dt in DataType}
        for i, (core, line, is_store, _) in enumerate(stream):
            dt = list(DataType)[i % len(DataType)]
            h.demand_access(core, line, dt, is_store=is_store)
            per_type[dt] += 1
        for cache in [*h.l1s, *h.l2s, h.l3]:
            s = cache.stats
            assert s.total_accesses == s.total_hits + s.total_misses
        # L1 sees every demand access, partitioned exactly by data type.
        for dt in DataType:
            l1 = sum(c.stats.hits[dt] + c.stats.misses[dt] for c in h.l1s)
            assert l1 == per_type[dt]


class TestSimulationAccounting:
    """The same invariants through a real end-to-end ``simulate()`` run."""

    def _result(self, small_kron):
        from repro.system.runner import simulate
        from repro.workloads.registry import get_workload

        workload = get_workload("PR")
        run = workload.run(small_kron, max_refs=4000)
        return simulate(run)

    def test_every_level_conserves_accesses(self, small_kron):
        result = self._result(small_kron)
        h = result.hierarchy
        for cache in [*h.l1s, *h.l2s, h.l3]:
            s = cache.stats
            assert s.total_accesses == s.total_hits + s.total_misses
            for dt in DataType:
                assert s.hits[dt] >= 0 and s.misses[dt] >= 0
        # Misses flow down the hierarchy one level at a time.
        l1_misses = sum(c.stats.total_misses for c in h.l1s)
        l2_total = sum(c.stats.total_accesses for c in h.l2s)
        assert l2_total == l1_misses
        l2_misses = sum(c.stats.total_misses for c in h.l2s)
        assert h.l3.stats.total_accesses == l2_misses

"""Property-based tests for the cache models.

Two classic invariants are checked against random access streams:

* **LRU inclusion property** — a larger (same-geometry) LRU cache's
  contents always include a smaller one's, hence hits(bigger) ⊇
  hits(smaller);
* **hierarchy inclusivity** — every line resident in a private cache is
  resident in the shared LLC, under any interleaving of loads/stores
  from any core.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import Cache, CacheConfig, CacheHierarchy
from repro.trace import DataType

lines = st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300)


class TestLRUProperties:
    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_mattson_inclusion(self, stream):
        small = Cache(CacheConfig("s", 4 * 64, 4, 64))   # 4 lines, 1 set
        big = Cache(CacheConfig("b", 8 * 64, 8, 64))     # 8 lines, 1 set
        for line in stream:
            s_hit = small.lookup(line) is not None
            b_hit = big.lookup(line) is not None
            if s_hit:
                assert b_hit  # a hit in the small cache must hit in the big
            small.insert(line)
            big.insert(line)

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, stream):
        c = Cache(CacheConfig("c", 8 * 64, 2, 64))
        for line in stream:
            c.insert(line)
            assert c.occupancy() <= c.config.num_lines
            for s in c._sets:
                assert len(s) <= c.config.associativity

    @given(lines)
    @settings(max_examples=60, deadline=None)
    def test_resident_after_insert(self, stream):
        c = Cache(CacheConfig("c", 8 * 64, 2, 64))
        for line in stream:
            c.insert(line)
            assert c.contains(line)


accesses = st.lists(
    st.tuples(
        st.integers(0, 1),           # core
        st.integers(0, 63),          # line
        st.booleans(),               # is_store
        st.booleans(),               # via prefetch
    ),
    min_size=1,
    max_size=250,
)


class TestHierarchyProperties:
    @given(accesses)
    @settings(max_examples=50, deadline=None)
    def test_inclusivity_invariant(self, stream):
        h = CacheHierarchy(
            CacheConfig("L1", 2 * 64, 2, 64),
            CacheConfig("L2", 4 * 64, 2, 64),
            CacheConfig("L3", 16 * 64, 4, 64),
            num_cores=2,
        )
        for core, line, is_store, prefetch in stream:
            if prefetch:
                h.prefetch_fill(core, line, DataType.PROPERTY)
            else:
                h.demand_access(core, line, DataType.PROPERTY, is_store=is_store)
            for c in range(2):
                for resident in h.l1s[c].resident_lines():
                    assert h.l3.contains(resident)
                for resident in h.l2s[c].resident_lines():
                    assert h.l3.contains(resident)

    @given(accesses)
    @settings(max_examples=50, deadline=None)
    def test_demand_always_ends_resident_in_l1(self, stream):
        h = CacheHierarchy(
            CacheConfig("L1", 2 * 64, 2, 64),
            CacheConfig("L2", 4 * 64, 2, 64),
            CacheConfig("L3", 16 * 64, 4, 64),
            num_cores=2,
        )
        for core, line, is_store, _ in stream:
            h.demand_access(core, line, DataType.PROPERTY, is_store=is_store)
            assert h.l1s[core].contains(line)

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_stats_accounting_consistent(self, stream):
        h = CacheHierarchy(
            CacheConfig("L1", 2 * 64, 2, 64),
            CacheConfig("L2", 4 * 64, 2, 64),
            CacheConfig("L3", 16 * 64, 4, 64),
            num_cores=2,
        )
        demands = 0
        for core, line, is_store, prefetch in stream:
            if not prefetch:
                h.demand_access(core, line, DataType.PROPERTY, is_store=is_store)
                demands += 1
        l1_total = sum(c.stats.total_accesses for c in h.l1s)
        assert l1_total == demands
        # Every L1 miss becomes exactly one L2 access, and so on down.
        l1_misses = sum(c.stats.total_misses for c in h.l1s)
        l2_total = sum(c.stats.total_accesses for c in h.l2s)
        assert l2_total == l1_misses
        l2_misses = sum(c.stats.total_misses for c in h.l2s)
        assert h.l3.stats.total_accesses == l2_misses

"""Property-based tests on workload traces over random graphs.

Invariants that must hold for *any* graph: every traced address falls in
an allocated region of the right kind, property gathers depend on
structure loads, and structure accesses never leave the CSR bounds.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import build_csr
from repro.trace import NO_DEP, DataType
from repro.workloads import get_workload


@st.composite
def random_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=60))
    m = draw(st.integers(min_value=1, max_value=240))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, size=(m, 2))
    weighted = draw(st.booleans())
    weights = rng.integers(1, 64, size=m) if weighted else None
    return build_csr(n, edges, weights=weights, name="hyp")


WORKLOADS_TO_CHECK = ("PR", "BFS", "CC", "BC", "SSSP")


def run_any(workload_name, graph):
    w = get_workload(workload_name)
    if w.needs_weights and not graph.is_weighted:
        return None
    if graph.num_edges == 0:
        return None
    kwargs = {"iterations": 1} if workload_name == "PR" else {}
    if workload_name == "BC":
        kwargs = {"num_sources": 1}
    try:
        return w.run(graph, max_refs=5_000, **kwargs)
    except ValueError:
        return None  # e.g. no non-isolated source


class TestTraceInvariants:
    @given(random_graphs(), st.sampled_from(WORKLOADS_TO_CHECK))
    @settings(max_examples=60, deadline=None)
    def test_addresses_fall_in_matching_regions(self, graph, workload_name):
        run = run_any(workload_name, graph)
        if run is None:
            return
        space = run.layout.space
        t = run.trace
        for i in range(len(t)):
            region = space.region_of(int(t.addr[i]))
            assert region is not None
            assert int(region.kind) == int(t.kind[i])

    @given(random_graphs(), st.sampled_from(WORKLOADS_TO_CHECK))
    @settings(max_examples=60, deadline=None)
    def test_structure_addresses_within_csr(self, graph, workload_name):
        run = run_any(workload_name, graph)
        if run is None:
            return
        t = run.trace
        struct = run.layout.structure
        mask = t.kind == int(DataType.STRUCTURE)
        for addr in t.addr[mask]:
            assert struct.contains(int(addr))

    @given(random_graphs(), st.sampled_from(("PR", "BFS", "CC")))
    @settings(max_examples=40, deadline=None)
    def test_gather_deps_point_at_structure_loads(self, graph, workload_name):
        run = run_any(workload_name, graph)
        if run is None:
            return
        t = run.trace
        for i in range(len(t)):
            d = int(t.dep[i])
            if (
                d != NO_DEP
                and t.is_load[i]
                and t.kind[i] == int(DataType.PROPERTY)
                and t.kind[d] != int(DataType.PROPERTY)
            ):
                # Non-property producers of property loads must be
                # structure or intermediate (worklist) loads — and loads.
                assert bool(t.is_load[d])

    @given(random_graphs())
    @settings(max_examples=40, deadline=None)
    def test_traced_pr_matches_reference_on_any_graph(self, graph):
        pr = get_workload("PR")
        ref = pr.reference(graph, iterations=2)
        run = pr.run(graph, max_refs=None, iterations=2)
        assert run.completed
        assert np.allclose(run.result, ref)

    @given(random_graphs())
    @settings(max_examples=30, deadline=None)
    def test_traced_cc_matches_reference_on_any_graph(self, graph):
        cc = get_workload("CC")
        ref = cc.reference(graph)
        run = cc.run(graph, max_refs=None)
        assert run.completed
        assert np.array_equal(run.result, ref)

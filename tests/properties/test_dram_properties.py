"""Property-based tests for the DRAM model and the MRB."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import DRAMConfig, DRAMModel, MemoryRequestBuffer

requests = st.lists(
    st.tuples(
        st.integers(0, 200),      # line
        st.integers(0, 5_000),    # now (non-decreasing applied below)
        st.booleans(),            # is_prefetch
    ),
    min_size=1,
    max_size=200,
)


class TestDRAMProperties:
    @given(requests)
    @settings(max_examples=60, deadline=None)
    def test_latency_at_least_device_latency(self, reqs):
        dram = DRAMModel()
        now = 0
        for line, dt, is_pf in reqs:
            now += dt
            latency = dram.access(line, now, is_prefetch=is_pf)
            assert latency >= dram.config.device_latency

    @given(requests)
    @settings(max_examples=60, deadline=None)
    def test_stats_balance(self, reqs):
        dram = DRAMModel()
        now = 0
        demand = prefetch = 0
        for line, dt, is_pf in reqs:
            now += dt
            dram.access(line, now, is_prefetch=is_pf)
            if is_pf:
                prefetch += 1
            else:
                demand += 1
        assert dram.stats.demand_reads == demand
        assert dram.stats.prefetch_reads == prefetch
        assert dram.stats.bus_accesses == demand + prefetch

    @given(requests)
    @settings(max_examples=60, deadline=None)
    def test_demand_latency_independent_of_prefetch_history(self, reqs):
        """Demand-priority scheduling: replaying the same demand sequence
        with all prefetches removed yields identical demand latencies."""
        with_pf = DRAMModel()
        without_pf = DRAMModel()
        now = 0
        latencies_a = []
        latencies_b = []
        for line, dt, is_pf in reqs:
            now += dt
            lat = with_pf.access(line, now, is_prefetch=is_pf)
            if not is_pf:
                latencies_a.append(lat)
                latencies_b.append(without_pf.access(line, now))
        assert latencies_a == latencies_b

    @given(st.integers(1, 64), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_bank_mapping_in_range(self, num_banks, line):
        dram = DRAMModel(DRAMConfig(num_banks=num_banks))
        assert 0 <= dram._bank_of(line) < num_banks


class TestMRBProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.booleans(), st.integers(0, 3)),
            min_size=1,
            max_size=120,
        ),
        st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_never_exceeded(self, entries, capacity):
        mrb = MemoryRequestBuffer(capacity=capacity)
        for line, c_bit, core in entries:
            mrb.enqueue(line, c_bit, core)
            assert len(mrb) <= capacity

    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.booleans(), st.integers(0, 3)),
            min_size=1,
            max_size=120,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_retire_returns_latest_metadata(self, entries):
        mrb = MemoryRequestBuffer(capacity=1024)
        last: dict[int, tuple[bool, int]] = {}
        c_seen: dict[int, bool] = {}
        for line, c_bit, core in entries:
            mrb.enqueue(line, c_bit, core)
            c_seen[line] = c_seen.get(line, False) or c_bit
            last[line] = (c_seen[line], core)
        for line, (c_bit, core) in last.items():
            entry = mrb.retire(line)
            assert entry is not None
            assert entry.c_bit == c_bit  # prefetch tag is sticky on merge
            assert entry.core == core

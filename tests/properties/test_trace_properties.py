"""Property-based tests for trace buffers and the core timing model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import chain_stats, compute_window_timing, iter_windows
from repro.trace import NO_DEP, DataType, TraceBuffer


@st.composite
def traces(draw, max_refs=150):
    """Random traces with well-formed backward dependencies."""
    n = draw(st.integers(1, max_refs))
    tb = TraceBuffer()
    for i in range(n):
        addr = draw(st.integers(0, 1 << 16)) * 4
        kind = draw(st.sampled_from(list(DataType)))
        is_load = draw(st.booleans())
        gap = draw(st.integers(0, 5))
        dep = NO_DEP
        if i > 0 and draw(st.booleans()):
            dep = draw(st.integers(0, i - 1))
        tb.append(addr, kind, is_load=is_load, dep=dep, gap=gap)
    return tb.finalize()


class TestWindowProperties:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_windows_partition_trace(self, trace):
        windows = list(iter_windows(trace, 32))
        covered = sum(w.num_refs for w in windows)
        assert covered == len(trace)
        assert sum(w.instructions for w in windows) == trace.num_instructions

    @given(traces(), st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_window_instructions_bounded(self, trace, rob):
        max_single = max(1 + int(g) for g in trace.gap)
        for w in iter_windows(trace, rob):
            assert w.instructions < rob + max_single


class TestChainProperties:
    @given(traces())
    @settings(max_examples=60, deadline=None)
    def test_chained_loads_never_exceed_total(self, trace):
        cs = chain_stats(trace, 64)
        assert 0 <= cs.loads_in_chains <= cs.total_loads
        assert cs.sum_chain_length == cs.loads_in_chains
        if cs.num_chains:
            assert cs.mean_chain_length >= 2.0
            assert cs.max_chain_length <= cs.loads_in_chains


@st.composite
def window_loads(draw):
    n = draw(st.integers(0, 40))
    loads = []
    for i in range(n):
        dep = draw(st.sampled_from([NO_DEP] + list(range(i)))) if i else NO_DEP
        level = draw(st.sampled_from(["L1", "L2", "L3", "DRAM"]))
        latency = {"L1": 0.0, "L2": 11.0, "L3": 43.0, "DRAM": 160.0}[level]
        loads.append((i, dep, level, latency))
    return loads


class TestTimingProperties:
    @given(window_loads(), st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_exposed_bounds(self, loads, mshr):
        t = compute_window_timing(loads, 0, mshr)
        total = sum(latency for *_, latency in loads)
        max_single = max((latency for *_, latency in loads), default=0.0)
        assert t.exposed <= total + 1e-9  # never worse than full serial
        assert t.exposed >= max_single - 1e-9  # at least one latency
        assert t.exposed >= t.bandwidth_bound - 1e-9

    @given(window_loads())
    @settings(max_examples=60, deadline=None)
    def test_more_mshrs_never_hurt(self, loads):
        few = compute_window_timing(loads, 0, mshr=2)
        many = compute_window_timing(loads, 0, mshr=16)
        assert many.exposed <= few.exposed + 1e-9

    @given(window_loads())
    @settings(max_examples=60, deadline=None)
    def test_exposed_by_level_partitions_exposed(self, loads):
        t = compute_window_timing(loads, 0, 8)
        parts = t.exposed_by_level()
        if t.total_miss_latency > 0:
            assert abs(sum(parts.values()) - t.exposed) < 1e-6

"""Shared fixtures: small deterministic graphs and traces."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.graph import CSRGraph, build_csr, kronecker, road_mesh, uniform_random


@pytest.fixture(autouse=True)
def _pin_global_seeds():
    """Pin every global RNG before each test.

    The simulator itself only uses explicitly-seeded ``default_rng``
    instances, but test helpers (and Hypothesis shrinking) may touch the
    global generators; pinning them makes any accidental global-RNG
    dependence reproducible instead of flaky.  The nondeterminism audit
    in ``tests/parity/test_determinism.py`` checks the stronger property
    that simulation never consumes global RNG state at all.
    """
    random.seed(0xD307)
    np.random.seed(0xD307)
    yield


@pytest.fixture
def tiny_graph() -> CSRGraph:
    """The 8-vertex example graph used across unit tests.

    Edges (directed both ways where listed twice):

        0-1, 0-2, 1-2, 2-3, 3-4, 4-5, 5-6, 6-7  (a path-ish component)
    """
    edges = [
        (0, 1), (1, 0),
        (0, 2), (2, 0),
        (1, 2), (2, 1),
        (2, 3), (3, 2),
        (3, 4), (4, 3),
        (4, 5), (5, 4),
        (5, 6), (6, 5),
        (6, 7), (7, 6),
    ]
    return build_csr(8, np.array(edges), name="tiny")


@pytest.fixture
def two_component_graph() -> CSRGraph:
    """Two components: {0,1,2} and {3,4}, plus isolated vertex 5."""
    edges = [(0, 1), (1, 0), (1, 2), (2, 1), (3, 4), (4, 3)]
    return build_csr(6, np.array(edges), name="twocomp")


@pytest.fixture
def weighted_graph() -> CSRGraph:
    """Small weighted digraph with known shortest paths from 0.

    0->1 (w=2), 0->2 (w=9), 1->2 (w=3), 2->3 (w=1), 1->3 (w=10)
    => dist = [0, 2, 5, 6]
    """
    edges = np.array([(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    weights = np.array([2, 9, 3, 10, 1])
    return build_csr(4, edges, weights=weights, name="wtiny")


@pytest.fixture(scope="session")
def small_kron() -> CSRGraph:
    """A kron graph small enough for exhaustive workload validation."""
    return kronecker(scale=9, edge_factor=8, seed=5, name="kron-s9")


@pytest.fixture(scope="session")
def small_kron_weighted() -> CSRGraph:
    """Weighted variant of the small kron graph."""
    return kronecker(scale=9, edge_factor=8, weighted=True, seed=5, name="kron-s9w")


@pytest.fixture(scope="session")
def small_road() -> CSRGraph:
    """A small road mesh."""
    return road_mesh(side=24, seed=3, name="road-24")


@pytest.fixture(scope="session")
def small_urand() -> CSRGraph:
    """A small uniform-random graph."""
    return uniform_random(scale=9, edge_factor=8, seed=7, name="urand-s9")

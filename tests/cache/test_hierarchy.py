"""Unit tests for the inclusive three-level hierarchy."""

import pytest

from repro.cache import CacheConfig, CacheHierarchy
from repro.trace import DataType


def make_hierarchy(num_cores=1, with_l2=True, l3_size=16 * 64):
    l1 = CacheConfig("L1", 2 * 64, 2, 64)
    l2 = CacheConfig("L2", 4 * 64, 2, 64) if with_l2 else None
    l3 = CacheConfig("L3", l3_size, 4, 64)
    return CacheHierarchy(l1, l2, l3, num_cores)


class TestDemandPath:
    def test_cold_miss_goes_to_dram_and_fills_all_levels(self):
        h = make_hierarchy()
        out = h.demand_access(0, 100, DataType.PROPERTY)
        assert out.level == "DRAM"
        assert h.l1s[0].contains(100)
        assert h.l2s[0].contains(100)
        assert h.l3.contains(100)

    def test_l1_hit(self):
        h = make_hierarchy()
        h.demand_access(0, 100, DataType.PROPERTY)
        out = h.demand_access(0, 100, DataType.PROPERTY)
        assert out.level == "L1"
        assert h.l1s[0].stats.hits[DataType.PROPERTY] == 1

    def test_l2_hit_after_l1_eviction(self):
        h = make_hierarchy()
        # L1 is one 2-way set; lines 0, 2, 3 overflow it while mapping to
        # two different L2 sets (so all three stay L2-resident).
        h.demand_access(0, 0, DataType.PROPERTY)
        h.demand_access(0, 2, DataType.PROPERTY)
        h.demand_access(0, 3, DataType.PROPERTY)  # evicts line 0 from L1
        assert not h.l1s[0].contains(0)
        out = h.demand_access(0, 0, DataType.PROPERTY)
        assert out.level == "L2"
        assert h.l1s[0].contains(0)  # refilled

    def test_no_l2_configuration(self):
        h = make_hierarchy(with_l2=False)
        assert h.l2s is None
        h.demand_access(0, 0, DataType.PROPERTY)
        h.demand_access(0, 2, DataType.PROPERTY)
        h.demand_access(0, 4, DataType.PROPERTY)
        out = h.demand_access(0, 0, DataType.PROPERTY)
        assert out.level == "L3"

    def test_store_marks_dirty_and_writeback_on_l3_eviction(self):
        h = make_hierarchy(l3_size=4 * 64)
        h.demand_access(0, 0, DataType.PROPERTY, is_store=True)
        # Fill set 0 of the 1-set... (4-way) L3 until line 0 is evicted.
        for line in (4, 8, 12, 16):
            h.demand_access(0, line, DataType.PROPERTY)
        events = h.drain_events()
        writebacks = [e for e in events if e.kind == "writeback"]
        assert any(e.line == 0 for e in writebacks)

    def test_clean_eviction_no_writeback(self):
        h = make_hierarchy(l3_size=4 * 64)
        h.demand_access(0, 0, DataType.PROPERTY)
        for line in (4, 8, 12, 16):
            h.demand_access(0, line, DataType.PROPERTY)
        events = h.drain_events()
        assert not [e for e in events if e.kind == "writeback" and e.line == 0]


class TestInclusion:
    def test_l3_eviction_back_invalidates_private_caches(self):
        h = make_hierarchy(l3_size=4 * 64)
        h.demand_access(0, 0, DataType.PROPERTY)
        assert h.l1s[0].contains(0)
        for line in (4, 8, 12, 16):
            h.demand_access(0, line, DataType.PROPERTY)
        assert not h.l3.contains(0)
        assert not h.l1s[0].contains(0)
        assert not h.l2s[0].contains(0)

    def test_l2_eviction_back_invalidates_l1(self):
        # L2: 4 lines, 2-way => 2 sets. Lines 0,2,4 map to L2 set 0.
        h = make_hierarchy()
        h.demand_access(0, 0, DataType.PROPERTY)
        h.demand_access(0, 2, DataType.PROPERTY)
        h.demand_access(0, 4, DataType.PROPERTY)  # evicts 0 from L2
        assert not h.l2s[0].contains(0)
        assert not h.l1s[0].contains(0)

    def test_invariant_l1_subset_of_l3(self):
        h = make_hierarchy(l3_size=8 * 64)
        import random

        rng = random.Random(7)
        for _ in range(300):
            h.demand_access(0, rng.randrange(0, 64), DataType.PROPERTY)
        for line in h.l1s[0].resident_lines():
            assert h.l3.contains(line)
        for line in h.l2s[0].resident_lines():
            assert h.l3.contains(line)


class TestMultiCore:
    def test_private_caches_are_private(self):
        h = make_hierarchy(num_cores=2)
        h.demand_access(0, 0, DataType.PROPERTY)
        assert h.l1s[0].contains(0)
        assert not h.l1s[1].contains(0)
        out = h.demand_access(1, 0, DataType.PROPERTY)
        assert out.level == "L3"  # shared LLC services the other core

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            make_hierarchy(num_cores=0)


class TestPrefetchPath:
    def test_prefetch_fill_l2_l3_not_l1(self):
        h = make_hierarchy()
        h.prefetch_fill(0, 42, DataType.STRUCTURE)
        assert not h.l1s[0].contains(42)
        assert h.l2s[0].contains(42)
        assert h.l3.contains(42)

    def test_prefetch_fill_into_l1(self):
        h = make_hierarchy()
        h.prefetch_fill(0, 42, DataType.STRUCTURE, into_l1=True)
        assert h.l1s[0].contains(42)

    def test_demand_on_prefetched_line_reports_first_use(self):
        h = make_hierarchy()
        h.prefetch_fill(0, 42, DataType.STRUCTURE)
        out = h.demand_access(0, 42, DataType.STRUCTURE)
        assert out.level == "L2"
        assert out.prefetched
        assert out.first_use_of_prefetch
        out2 = h.demand_access(0, 42, DataType.STRUCTURE)
        assert not out2.first_use_of_prefetch

    def test_unused_prefetch_eviction_event(self):
        h = make_hierarchy(l3_size=4 * 64)
        h.prefetch_fill(0, 0, DataType.STRUCTURE)
        for line in (4, 8, 12, 16):
            h.demand_access(0, line, DataType.PROPERTY)
        events = h.drain_events()
        assert any(
            e.kind == "evict_unused_pf" and e.line == 0 and e.level == "L3"
            for e in events
        )

    def test_copy_to_l2_requires_l3_residency(self):
        h = make_hierarchy()
        h.copy_to_l2(0, 7, DataType.PROPERTY)
        assert not h.l2s[0].contains(7)
        h.demand_access(0, 7, DataType.PROPERTY)
        h.copy_to_l2(0, 7, DataType.PROPERTY)
        assert h.l2s[0].contains(7)

    def test_on_chip_probe(self):
        h = make_hierarchy()
        assert not h.on_chip(3)
        h.demand_access(0, 3, DataType.PROPERTY)
        assert h.on_chip(3)

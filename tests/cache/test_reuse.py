"""Unit tests for the exact reuse-distance profiler."""

import numpy as np

from repro.cache import reuse_distance_profile
from repro.trace import DataType, TraceBuffer, gather_trace, stream_trace


def trace_of_lines(lines, kind=DataType.PROPERTY):
    tb = TraceBuffer()
    for line in lines:
        tb.load(line * 64, kind)
    return tb.finalize()


class TestStackDistance:
    def test_immediate_reuse_distance_zero(self):
        p = reuse_distance_profile(trace_of_lines([1, 1]))
        assert p.distances[DataType.PROPERTY] == [0]

    def test_classic_sequence(self):
        # a b c a : reuse of a sees 2 distinct lines (b, c).
        p = reuse_distance_profile(trace_of_lines([1, 2, 3, 1]))
        assert p.distances[DataType.PROPERTY] == [2]

    def test_repeats_do_not_inflate_distance(self):
        # a b b b a : only one distinct line between the two a's.
        p = reuse_distance_profile(trace_of_lines([1, 2, 2, 2, 1]))
        assert p.distances[DataType.PROPERTY] == [0, 0, 2 - 1]

    def test_cold_counts(self):
        p = reuse_distance_profile(trace_of_lines([1, 2, 3]))
        assert p.cold[DataType.PROPERTY] == 3
        assert p.distances[DataType.PROPERTY] == []

    def test_same_line_different_words(self):
        tb = TraceBuffer()
        tb.load(0, DataType.PROPERTY)
        tb.load(4, DataType.PROPERTY)  # same 64 B line
        p = reuse_distance_profile(tb.finalize())
        assert p.distances[DataType.PROPERTY] == [0]

    def test_stream_never_reuses(self):
        p = reuse_distance_profile(stream_trace(100, step=64))
        assert p.distances[DataType.STRUCTURE] == []
        assert p.cold[DataType.STRUCTURE] == 100


class TestMattsonProperty:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        lines = rng.integers(0, 12, size=200).tolist()
        p = reuse_distance_profile(trace_of_lines(lines))
        # Brute force stack distances.
        expected = []
        last = {}
        for t, line in enumerate(lines):
            if line in last:
                expected.append(len(set(lines[last[line] + 1 : t])))
            last[line] = t
        assert p.distances[DataType.PROPERTY] == expected


class TestDerivedViews:
    def test_fraction_beyond(self):
        p = reuse_distance_profile(trace_of_lines([1, 2, 3, 1, 2, 3, 1]))
        # distances: [2, 2, 2]
        assert p.fraction_beyond(DataType.PROPERTY, 3) == 0.0
        assert p.fraction_beyond(DataType.PROPERTY, 2) == 1.0

    def test_percentiles(self):
        p = reuse_distance_profile(trace_of_lines([1, 2, 1, 2]))
        assert p.median(DataType.PROPERTY) == 1.0

    def test_serviced_level_fractions(self):
        p = reuse_distance_profile(trace_of_lines([1, 2, 3, 1, 1]))
        # distances: [2, 0]; cold: 3
        out = p.serviced_level_fractions(
            DataType.PROPERTY, {"L1": 1, "L2": 4}
        )
        assert abs(out["L1"] - 1 / 5) < 1e-9   # the distance-0 reuse
        assert abs(out["L2"] - 1 / 5) < 1e-9   # the distance-2 reuse
        assert abs(out["DRAM"] - 3 / 5) < 1e-9  # cold misses

    def test_gather_heterogeneous_distances(self):
        """Structure streams (no reuse) vs property gathers (finite reuse)
        — the paper's Observation #6 in miniature."""
        t = gather_trace(2000, property_region=1 << 12)
        p = reuse_distance_profile(t)
        assert p.distances[DataType.STRUCTURE] != [] or p.cold[DataType.STRUCTURE] > 0
        assert len(p.distances[DataType.PROPERTY]) > 0
        assert p.median(DataType.PROPERTY) > 0

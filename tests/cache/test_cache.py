"""Unit tests for the set-associative cache."""

import pytest

from repro.cache import Cache, CacheConfig
from repro.trace import DataType


def make_cache(size=1024, assoc=2, line=64):
    return Cache(CacheConfig("test", size, assoc, line))


class TestCacheConfig:
    def test_geometry(self):
        c = CacheConfig("c", 32 * 1024, 8, 64)
        assert c.num_sets == 64
        assert c.num_lines == 512

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("c", 1000, 8, 64)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("c", 0, 8, 64)


class TestLookupInsert:
    def test_miss_then_hit(self):
        c = make_cache()
        assert c.lookup(5) is None
        c.insert(5)
        assert c.lookup(5) is not None

    def test_lru_eviction_within_set(self):
        c = make_cache(size=2 * 64, assoc=2)  # one set, two ways
        c.insert(0)
        c.insert(1)
        c.lookup(0)  # 0 becomes MRU
        victim = c.insert(2)
        assert victim is not None
        assert victim[0] == 1
        assert c.contains(0) and c.contains(2) and not c.contains(1)

    def test_set_isolation(self):
        c = make_cache(size=4 * 64, assoc=1)  # 4 sets, direct mapped
        c.insert(0)
        c.insert(1)
        assert c.contains(0) and c.contains(1)
        victim = c.insert(4)  # maps to set 0, evicts line 0
        assert victim[0] == 0

    def test_reinsert_refreshes_lru_and_merges_dirty(self):
        c = make_cache(size=2 * 64, assoc=2)
        c.insert(0, dirty=True)
        c.insert(1)
        assert c.insert(0) is None  # refresh, no eviction
        assert c.lookup(0, update_lru=False).dirty
        victim = c.insert(2)  # 1 is now LRU
        assert victim[0] == 1

    def test_contains_does_not_touch_lru(self):
        c = make_cache(size=2 * 64, assoc=2)
        c.insert(0)
        c.insert(1)
        c.contains(0)
        victim = c.insert(2)
        assert victim[0] == 0  # 0 stayed LRU despite contains()

    def test_occupancy(self):
        c = make_cache()
        for i in range(5):
            c.insert(i)
        assert c.occupancy() == 5
        assert sorted(c.resident_lines()) == list(range(5))


class TestMetadata:
    def test_prefetched_flag_and_stats(self):
        c = make_cache()
        c.insert(7, prefetched=True)
        assert c.stats.prefetch_fills == 1
        assert c.lookup(7).prefetched

    def test_kind_recorded(self):
        c = make_cache()
        c.insert(3, kind=DataType.PROPERTY)
        assert c.lookup(3).kind == int(DataType.PROPERTY)

    def test_invalidate(self):
        c = make_cache()
        c.insert(9)
        meta = c.invalidate(9)
        assert meta is not None
        assert not c.contains(9)
        assert c.stats.back_invalidations == 1
        assert c.invalidate(9) is None

    def test_eviction_counted(self):
        c = make_cache(size=64, assoc=1)
        c.insert(0)
        c.insert(1)
        assert c.stats.evictions == 1


class TestStats:
    def test_record_and_rates(self):
        c = make_cache()
        c.stats.record(DataType.PROPERTY, hit=True)
        c.stats.record(DataType.PROPERTY, hit=False)
        c.stats.record(DataType.STRUCTURE, hit=False)
        assert c.stats.total_accesses == 3
        assert abs(c.stats.hit_rate - 1 / 3) < 1e-9
        assert c.stats.hit_rate_of(DataType.PROPERTY) == 0.5
        assert c.stats.mpki(1000) == 2.0
        assert c.stats.mpki_of(DataType.STRUCTURE, 1000) == 1.0

    def test_empty_rates(self):
        c = make_cache()
        assert c.stats.hit_rate == 0.0
        assert c.stats.mpki(0) == 0.0

"""Unit tests for the MC-based Property Prefetcher."""

import numpy as np

from repro.droplet import MPP, MPPConfig
from repro.graph import build_csr
from repro.memory import GraphLayout


def make_mpp(weighted=False, identifies=False, num_vertices=64, degree=16):
    edges = [(0, (7 * i) % num_vertices) for i in range(degree)]
    g = build_csr(num_vertices, np.array(edges))
    layout = GraphLayout(g, property_names=("rank",))
    mpp = MPP(
        layout.space.page_table,
        MPPConfig(identifies_structure=identifies),
    )
    mpp.configure_from_layout(layout, "rank")
    return mpp, layout, g


class TestStructureFill:
    def test_generates_property_requests(self):
        mpp, layout, g = make_mpp()
        line = layout.structure.base // 64
        requests = mpp.on_structure_fill(line, core=1)
        assert requests
        assert all(r.core == 1 for r in requests)
        prop = layout.properties["rank"]
        expected_lines = {
            (prop.base + 4 * int(v)) // 64 for v in g.neighbors[:16]
        }
        assert {r.line for r in requests} == expected_lines

    def test_requests_deduplicated_per_line(self):
        # All neighbors share one property cache line.
        edges = [(0, i) for i in range(16)]
        g = build_csr(64, np.array(edges))
        layout = GraphLayout(g, property_names=("rank",))
        mpp = MPP(layout.space.page_table)
        mpp.configure_from_layout(layout, "rank")
        requests = mpp.on_structure_fill(layout.structure.base // 64, 0)
        assert len(requests) == 1

    def test_issue_delay_includes_pipeline_stages(self):
        mpp, layout, _ = make_mpp()
        requests = mpp.on_structure_fill(layout.structure.base // 64, 0)
        cfg = mpp.config
        minimum = cfg.pag.scan_latency + cfg.coherence_check_latency
        assert all(r.issue_delay >= minimum for r in requests)
        # First touches include the MTLB page-walk latency.
        assert any(r.issue_delay > minimum for r in requests)

    def test_unconfigured_mpp_ignores_fills(self):
        g = build_csr(4, np.array([(0, 1)]))
        layout = GraphLayout(g)
        mpp = MPP(layout.space.page_table)
        assert mpp.on_structure_fill(layout.structure.base // 64, 0) == []

    def test_counters(self):
        mpp, layout, _ = make_mpp()
        mpp.on_structure_fill(layout.structure.base // 64, 0)
        assert mpp.structure_fills_seen == 1
        assert mpp.requests_generated > 0


class TestMPP1Identification:
    def test_plain_mpp_does_not_classify(self):
        mpp, layout, _ = make_mpp(identifies=False)
        assert not mpp.classifies_as_structure(layout.structure.base // 64)

    def test_mpp1_classifies_structure_lines(self):
        mpp, layout, _ = make_mpp(identifies=True)
        assert mpp.classifies_as_structure(layout.structure.base // 64)
        assert not mpp.classifies_as_structure(
            layout.properties["rank"].base // 64
        )


class TestVABOverflow:
    def test_overflow_truncates_and_counts(self):
        import numpy as np

        from repro.droplet import MPP, MPPConfig
        from repro.graph import build_csr
        from repro.memory import GraphLayout

        edges = [(0, i % 32) for i in range(16)]
        g = build_csr(32, np.array(edges))
        layout = GraphLayout(g, property_names=("rank",))
        mpp = MPP(layout.space.page_table, MPPConfig(vab_entries=4))
        mpp.configure_from_layout(layout, "rank")
        requests = mpp.on_structure_fill(layout.structure.base // 64, 0)
        assert mpp.vab_overflows == 1
        # Truncated to the VAB capacity before translation/dedup.
        assert len(requests) <= 4


class TestMultiPropertyMPP:
    def test_multiple_bases_generate_per_array_requests(self):
        import numpy as np

        from repro.droplet import MPP
        from repro.graph import build_csr
        from repro.memory import GraphLayout

        edges = [(0, i * 16) for i in range(4)]  # line-spread neighbor IDs
        g = build_csr(64, np.array(edges))
        layout = GraphLayout(g, property_names=("a", "b"))
        mpp = MPP(layout.space.page_table)
        mpp.configure_from_layout(layout, ("a", "b"))
        requests = mpp.on_structure_fill(layout.structure.base // 64, 0)
        lines = {r.line for r in requests}
        for name in ("a", "b"):
            region = layout.properties[name]
            assert any(
                region.contains(line * 64) for line in lines
            ), name

"""Unit tests for the §V-D overhead model."""

import pytest

from repro.droplet import AreaModel, MPPConfig


class TestAreaModel:
    def test_paper_scale_numbers(self):
        """The default configuration must land near the paper's numbers."""
        report = AreaModel().report(MPPConfig())
        # Paper: 7.7 KB storage, 0.0654 mm^2, 0.0348% of the chip.
        assert 7_000 <= report.mpp_storage_bytes <= 9_000
        assert 0.055 <= report.mpp_area_mm2 <= 0.080
        assert 0.0002 <= report.mpp_chip_fraction <= 0.0006

    def test_page_table_overhead(self):
        report = AreaModel().report(MPPConfig(), page_table_entries=512)
        assert report.page_table_extra_bytes == 64  # paper's 64 B
        assert abs(report.page_table_overhead_fraction - 64 / 4096) < 1e-9

    def test_l2_queue_overhead(self):
        report = AreaModel().report(MPPConfig(), l2_queue_entries=32)
        assert report.l2_queue_extra_bytes == 4  # paper's 4 B

    def test_mrb_overhead_quad_core(self):
        report = AreaModel(num_cores=4).report(MPPConfig(), mrb_entries=256)
        assert report.mrb_core_id_bytes == 64  # paper's 64 B

    def test_area_scales_with_buffers(self):
        small = AreaModel().mpp_area_mm2(MPPConfig(vab_entries=64, pab_entries=64))
        big = AreaModel().mpp_area_mm2(MPPConfig(vab_entries=1024, pab_entries=1024))
        assert big > small

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AreaModel(chip_area_mm2=0)
        with pytest.raises(ValueError):
            AreaModel(storage_fraction_of_mpp=0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"page_table_entries": 0},
            {"page_table_entries": -512},
            {"l2_queue_entries": 0},
            {"mrb_entries": 0},
            {"mrb_entries": 2.5},
        ],
    )
    def test_report_rejects_non_positive_inputs(self, kwargs):
        with pytest.raises(ValueError, match="positive integer"):
            AreaModel().report(MPPConfig(), **kwargs)

    @pytest.mark.parametrize(
        "field", ["vab_entries", "pab_entries", "mtlb_entries"]
    )
    def test_report_rejects_degenerate_mpp_geometry(self, field):
        with pytest.raises(ValueError, match=field):
            AreaModel().report(MPPConfig(**{field: 0}))

    def test_report_error_names_the_offending_field(self):
        with pytest.raises(ValueError, match=r"mrb_entries.*got -1"):
            AreaModel().report(MPPConfig(), mrb_entries=-1)

    def test_rejects_non_positive_core_count(self):
        with pytest.raises(ValueError, match="num_cores"):
            AreaModel(num_cores=0)

"""Unit tests for the §V-D overhead model."""

import pytest

from repro.droplet import AreaModel, MPPConfig


class TestAreaModel:
    def test_paper_scale_numbers(self):
        """The default configuration must land near the paper's numbers."""
        report = AreaModel().report(MPPConfig())
        # Paper: 7.7 KB storage, 0.0654 mm^2, 0.0348% of the chip.
        assert 7_000 <= report.mpp_storage_bytes <= 9_000
        assert 0.055 <= report.mpp_area_mm2 <= 0.080
        assert 0.0002 <= report.mpp_chip_fraction <= 0.0006

    def test_page_table_overhead(self):
        report = AreaModel().report(MPPConfig(), page_table_entries=512)
        assert report.page_table_extra_bytes == 64  # paper's 64 B
        assert abs(report.page_table_overhead_fraction - 64 / 4096) < 1e-9

    def test_l2_queue_overhead(self):
        report = AreaModel().report(MPPConfig(), l2_queue_entries=32)
        assert report.l2_queue_extra_bytes == 4  # paper's 4 B

    def test_mrb_overhead_quad_core(self):
        report = AreaModel(num_cores=4).report(MPPConfig(), mrb_entries=256)
        assert report.mrb_core_id_bytes == 64  # paper's 64 B

    def test_area_scales_with_buffers(self):
        small = AreaModel().mpp_area_mm2(MPPConfig(vab_entries=64, pab_entries=64))
        big = AreaModel().mpp_area_mm2(MPPConfig(vab_entries=1024, pab_entries=1024))
        assert big > small

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AreaModel(chip_area_mm2=0)
        with pytest.raises(ValueError):
            AreaModel(storage_fraction_of_mpp=0)

"""Unit tests for the Property Address Generator."""

import numpy as np
import pytest

from repro.droplet import PAG
from repro.graph import build_csr
from repro.memory import GraphLayout


def make_layout(weighted=False):
    edges = [(0, i % 5) for i in range(40)]
    weights = list(range(1, 41)) if weighted else None
    g = build_csr(
        5, np.array(edges), weights=np.array(weights) if weighted else None
    )
    return GraphLayout(g, property_names=("rank",)), g


class TestConfiguration:
    def test_unconfigured_raises(self):
        pag = PAG()
        with pytest.raises(RuntimeError):
            pag.scan(0)
        with pytest.raises(RuntimeError):
            pag.max_ids_per_line()

    def test_configure_from_layout(self):
        layout, _ = make_layout()
        pag = PAG()
        pag.configure_from_layout(layout, "rank")
        assert pag.configured
        assert pag.property_base == layout.properties["rank"].base
        assert pag.scan_granularity == 4


class TestScan:
    def test_equation_one(self):
        """property address = base + 4 * neighbor ID (paper Eq. 1)."""
        layout, g = make_layout()
        pag = PAG()
        pag.configure_from_layout(layout, "rank")
        addrs = pag.scan(layout.structure.base)
        base = layout.properties["rank"].base
        expected = base + 4 * g.neighbors[:16].astype(np.int64)
        assert np.array_equal(addrs, expected)

    def test_ids_per_line_unweighted_vs_weighted(self):
        unweighted, _ = make_layout()
        weighted, _ = make_layout(weighted=True)
        pu, pw = PAG(), PAG()
        pu.configure_from_layout(unweighted, "rank")
        pw.configure_from_layout(weighted, "rank")
        assert pu.max_ids_per_line() == 16
        assert pw.max_ids_per_line() == 8

    def test_scan_counts(self):
        layout, _ = make_layout()
        pag = PAG()
        pag.configure_from_layout(layout, "rank")
        pag.scan(layout.structure.base)
        pag.scan(layout.structure.base + 64)
        assert pag.lines_scanned == 2
        assert pag.addresses_generated == 32

    def test_scan_outside_structure_is_empty(self):
        layout, _ = make_layout()
        pag = PAG()
        pag.configure_from_layout(layout, "rank")
        assert len(pag.scan(layout.offsets.base)) == 0

"""Unit tests for the six prefetcher configurations."""

import pytest

from repro.droplet import PREFETCH_CONFIG_NAMES, make_prefetch_setup
from repro.prefetch import (
    DataAwareStreamer,
    GHBPrefetcher,
    NullPrefetcher,
    StreamPrefetcher,
    VLDPPrefetcher,
)


class TestFactory:
    def test_all_names_constructible(self):
        for name in PREFETCH_CONFIG_NAMES:
            setup = make_prefetch_setup(name)
            assert setup.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_prefetch_setup("magic")

    def test_none_is_baseline(self):
        setup = make_prefetch_setup("none")
        assert setup.is_baseline
        assert isinstance(setup.l2_prefetcher, NullPrefetcher)

    def test_ghb_and_vldp(self):
        assert isinstance(make_prefetch_setup("ghb").l2_prefetcher, GHBPrefetcher)
        assert isinstance(make_prefetch_setup("vldp").l2_prefetcher, VLDPPrefetcher)
        assert not make_prefetch_setup("ghb").use_mpp

    def test_stream_is_conventional(self):
        setup = make_prefetch_setup("stream")
        assert type(setup.l2_prefetcher) is StreamPrefetcher
        assert not setup.use_mpp

    def test_streammpp1_self_identifies(self):
        setup = make_prefetch_setup("streamMPP1")
        assert type(setup.l2_prefetcher) is StreamPrefetcher
        assert setup.use_mpp
        assert setup.mpp_config.identifies_structure

    def test_droplet_shape(self):
        setup = make_prefetch_setup("droplet")
        assert isinstance(setup.l2_prefetcher, DataAwareStreamer)
        assert setup.use_mpp
        assert not setup.mpp_config.identifies_structure  # trusts the C-bit
        assert not setup.fill_into_l1
        assert setup.mpp_issue_penalty == 0
        assert setup.streamer_targets_l3_queue

    def test_mono_l1_shape(self):
        setup = make_prefetch_setup("monoDROPLETL1")
        assert isinstance(setup.l2_prefetcher, DataAwareStreamer)
        assert setup.fill_into_l1
        assert setup.mpp_issue_penalty > 0  # lost decoupling
        assert setup.mpp_config.identifies_structure

    def test_streamer_kwargs_forwarded(self):
        setup = make_prefetch_setup("droplet", streamer_kwargs={"distance": 8})
        assert setup.l2_prefetcher.distance == 8

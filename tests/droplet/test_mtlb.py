"""Unit tests for the near-memory MTLB."""

from repro.droplet import MTLB
from repro.memory import PageTable


def make_mtlb():
    pt = PageTable(4096)
    pt.map_range(0, 8 * 4096, is_structure=False)          # property pages
    pt.map_range(16 * 4096, 4 * 4096, is_structure=True)   # structure pages
    return MTLB(pt, entries=4), pt


class TestTranslation:
    def test_property_translation(self):
        mtlb, _ = make_mtlb()
        out = mtlb.translate_property(0x1234)
        assert out is not None
        paddr, latency = out
        assert paddr == 0x1234
        assert latency == 50  # page walk on first touch
        paddr2, latency2 = mtlb.translate_property(0x1238)
        assert latency2 == 0  # cached

    def test_page_fault_drops_request(self):
        mtlb, _ = make_mtlb()
        assert mtlb.translate_property(10**9) is None
        assert mtlb.stats.dropped_faults == 1

    def test_structure_page_rejected_and_not_cached(self):
        mtlb, pt = make_mtlb()
        addr = 16 * 4096 + 8
        assert mtlb.translate_property(addr) is None
        assert len(mtlb) == 0  # the walked-in entry was purged


class TestShootdown:
    def test_property_shootdown_forwarded(self):
        mtlb, pt = make_mtlb()
        mtlb.translate_property(0)
        assert mtlb.shootdown(page=0, extra_bit_structure=False)
        assert mtlb.stats.shootdowns_received == 1
        assert mtlb.stats.shootdowns_filtered == 0
        # Entry gone: next translation walks again.
        _, latency = mtlb.translate_property(0)
        assert latency == 50

    def test_structure_shootdown_filtered(self):
        """Paper §V-C3: structure-page invalidations never reach the MTLB."""
        mtlb, _ = make_mtlb()
        mtlb.translate_property(0)
        assert not mtlb.shootdown(page=0, extra_bit_structure=True)
        assert mtlb.stats.shootdowns_filtered == 1
        _, latency = mtlb.translate_property(4)
        assert latency == 0  # entry survived

    def test_tlb_stats_exposed(self):
        mtlb, _ = make_mtlb()
        mtlb.translate_property(0)
        mtlb.translate_property(4)
        assert mtlb.tlb_stats.hits == 1
        assert mtlb.tlb_stats.misses == 1

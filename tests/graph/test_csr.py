"""Unit tests for the CSR graph representation."""

import numpy as np
import pytest

from repro.graph import CSRGraph, GraphError, build_csr


class TestBuildCSR:
    def test_basic_construction(self):
        g = build_csr(3, [(0, 1), (0, 2), (1, 2)])
        assert g.num_vertices == 3
        assert g.num_edges == 3
        assert list(g.neighbors_of(0)) == [1, 2]
        assert list(g.neighbors_of(1)) == [2]
        assert list(g.neighbors_of(2)) == []

    def test_empty_graph(self):
        g = build_csr(4, np.empty((0, 2), dtype=np.int64))
        assert g.num_vertices == 4
        assert g.num_edges == 0
        assert all(g.degree(v) == 0 for v in range(4))

    def test_zero_vertices(self):
        g = build_csr(0, np.empty((0, 2), dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_adjacency_sorted(self):
        g = build_csr(4, [(1, 3), (1, 0), (1, 2)])
        assert list(g.neighbors_of(1)) == [0, 2, 3]

    def test_dedup_keeps_first_weight(self):
        g = build_csr(
            3, [(0, 1), (0, 1), (0, 2)], weights=[5, 9, 7], dedup=True
        )
        assert g.num_edges == 2
        assert list(g.weights_of(0)) == [5, 7]

    def test_without_dedup_keeps_parallel_edges(self):
        g = build_csr(3, [(0, 1), (0, 1)])
        assert g.num_edges == 2

    def test_out_of_range_endpoint_rejected(self):
        with pytest.raises(GraphError):
            build_csr(2, [(0, 2)])
        with pytest.raises(GraphError):
            build_csr(2, [(-1, 0)])

    def test_negative_num_vertices_rejected(self):
        with pytest.raises(GraphError):
            build_csr(-1, [])

    def test_mismatched_weights_rejected(self):
        with pytest.raises(GraphError):
            build_csr(3, [(0, 1), (1, 2)], weights=[1])


class TestCSRGraphValidation:
    def test_bad_offsets_start(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([1, 2]), np.array([0], dtype=np.int32))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 2, 1]), np.array([0], dtype=np.int32))

    def test_offsets_end_must_match_edges(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 3]), np.array([0], dtype=np.int32))

    def test_neighbor_ids_in_range(self):
        with pytest.raises(GraphError):
            CSRGraph(np.array([0, 1]), np.array([5], dtype=np.int32))

    def test_weights_parallel_to_neighbors(self):
        with pytest.raises(GraphError):
            CSRGraph(
                np.array([0, 1]),
                np.array([0], dtype=np.int32),
                weights=np.array([1, 2]),
            )


class TestDerivedGraphs:
    def test_transpose_roundtrip(self, tiny_graph):
        t = tiny_graph.transpose()
        tt = t.transpose()
        assert np.array_equal(tt.offsets, tiny_graph.offsets)
        for v in range(tiny_graph.num_vertices):
            assert sorted(tt.neighbors_of(v)) == sorted(tiny_graph.neighbors_of(v))

    def test_transpose_reverses_edges(self):
        g = build_csr(3, [(0, 1), (0, 2)])
        t = g.transpose()
        assert list(t.neighbors_of(1)) == [0]
        assert list(t.neighbors_of(2)) == [0]
        assert t.degree(0) == 0

    def test_transpose_cached(self, tiny_graph):
        assert tiny_graph.transpose() is tiny_graph.transpose()

    def test_transpose_carries_weights(self):
        g = build_csr(3, [(0, 1), (1, 2)], weights=[7, 8])
        t = g.transpose()
        assert list(t.weights_of(1)) == [7]
        assert list(t.weights_of(2)) == [8]

    def test_symmetrized(self):
        g = build_csr(3, [(0, 1), (1, 2)])
        s = g.symmetrized()
        assert s.is_symmetric()
        assert s.num_edges == 4

    def test_is_symmetric_detects_asymmetry(self):
        g = build_csr(3, [(0, 1)])
        assert not g.is_symmetric()

    def test_tiny_graph_is_symmetric(self, tiny_graph):
        assert tiny_graph.is_symmetric()


class TestQueries:
    def test_degrees(self, tiny_graph):
        degs = tiny_graph.out_degrees()
        assert degs.sum() == tiny_graph.num_edges
        assert tiny_graph.degree(2) == 3  # neighbors 0, 1, 3

    def test_edges_iterator(self):
        g = build_csr(3, [(0, 1), (1, 2)])
        assert list(g.edges()) == [(0, 1), (1, 2)]

    def test_weights_of_unweighted_raises(self, tiny_graph):
        with pytest.raises(GraphError):
            tiny_graph.weights_of(0)

    def test_footprint_accounting(self):
        g = build_csr(10, [(0, 1)] * 4, weights=[1, 2, 3, 4])
        expected = 8 * 11 + 8 * 4 + 4 * 10
        assert g.footprint_bytes() == expected

    def test_footprint_unweighted(self):
        g = build_csr(10, [(0, 1)] * 4)
        assert g.footprint_bytes() == 8 * 11 + 4 * 4 + 4 * 10

"""Unit tests for edge-list I/O."""

import numpy as np
import pytest

from repro.graph import (
    GraphError,
    build_csr,
    dumps_edge_list,
    loads_edge_list,
    read_edge_list,
    write_edge_list,
)


class TestLoads:
    def test_basic(self):
        g = loads_edge_list("0 1\n1 2\n")
        assert g.num_vertices == 3
        assert list(g.edges()) == [(0, 1), (1, 2)]

    def test_comments_and_blanks(self):
        g = loads_edge_list("# header\n\n0 1\n  \n# more\n1 0\n")
        assert g.num_edges == 2

    def test_weighted(self):
        g = loads_edge_list("0 1 5\n1 2 7\n")
        assert g.is_weighted
        assert list(g.weights_of(0)) == [5]

    def test_explicit_num_vertices(self):
        g = loads_edge_list("0 1\n", num_vertices=10)
        assert g.num_vertices == 10

    def test_empty_text(self):
        g = loads_edge_list("")
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_inconsistent_weight_column(self):
        with pytest.raises(GraphError):
            loads_edge_list("0 1 5\n1 2\n")

    def test_bad_field_count(self):
        with pytest.raises(GraphError):
            loads_edge_list("0 1 2 3\n")

    def test_non_integer(self):
        with pytest.raises(GraphError):
            loads_edge_list("a b\n")


class TestRoundTrip:
    def test_unweighted_roundtrip(self, tiny_graph):
        g2 = loads_edge_list(dumps_edge_list(tiny_graph))
        assert np.array_equal(g2.offsets, tiny_graph.offsets)
        assert np.array_equal(g2.neighbors, tiny_graph.neighbors)

    def test_weighted_roundtrip(self):
        g = build_csr(4, [(0, 1), (2, 3)], weights=[9, 4])
        g2 = loads_edge_list(dumps_edge_list(g), num_vertices=4)
        assert np.array_equal(g2.weights, g.weights)

    def test_file_roundtrip(self, tmp_path, tiny_graph):
        path = tmp_path / "g.el"
        write_edge_list(tiny_graph, path)
        g2 = read_edge_list(path)
        assert np.array_equal(g2.neighbors, tiny_graph.neighbors)
        assert g2.name == "g"

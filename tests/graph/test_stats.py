"""Unit tests for graph statistics."""

import numpy as np

from repro.graph import (
    build_csr,
    degree_histogram,
    graph_stats,
    powerlaw_tail_ratio,
)


class TestGraphStats:
    def test_basic_fields(self, tiny_graph):
        s = graph_stats(tiny_graph)
        assert s.num_vertices == 8
        assert s.num_edges == 16
        assert s.avg_degree == 2.0
        assert s.max_degree == 3
        assert s.isolated_vertices == 0

    def test_isolated_counted(self, two_component_graph):
        s = graph_stats(two_component_graph)
        assert s.isolated_vertices == 1

    def test_as_row_keys(self, tiny_graph):
        row = graph_stats(tiny_graph).as_row()
        assert {"dataset", "vertices", "edges", "avg_deg"} <= set(row)

    def test_empty_graph(self):
        g = build_csr(0, np.empty((0, 2)))
        s = graph_stats(g)
        assert s.avg_degree == 0.0
        assert s.max_degree == 0


class TestDegreeHistogram:
    def test_counts_sum_to_vertices(self, tiny_graph):
        _, counts = degree_histogram(tiny_graph)
        assert counts.sum() == tiny_graph.num_vertices

    def test_handles_zero_max_degree(self):
        g = build_csr(3, np.empty((0, 2)))
        edges, counts = degree_histogram(g)
        assert counts.sum() == 3


class TestPowerlawTail:
    def test_empty_graph(self):
        g = build_csr(5, np.empty((0, 2)))
        assert powerlaw_tail_ratio(g) == 0.0

    def test_star_graph_concentrated(self):
        # 200 vertices, all edges from vertex 0.
        edges = [(0, i) for i in range(1, 200)]
        g = build_csr(200, edges)
        assert powerlaw_tail_ratio(g) == 1.0

    def test_ring_graph_uniform(self):
        n = 200
        edges = [(i, (i + 1) % n) for i in range(n)]
        g = build_csr(n, edges)
        assert powerlaw_tail_ratio(g) < 0.05

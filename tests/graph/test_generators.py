"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.graph import (
    PAPER_DATASET_NAMES,
    graph_stats,
    kronecker,
    make_dataset,
    paper_datasets,
    powerlaw_tail_ratio,
    preferential_attachment,
    road_mesh,
    uniform_random,
)


class TestKronecker:
    def test_size(self):
        g = kronecker(scale=8, edge_factor=8, seed=1)
        assert g.num_vertices == 256
        # Dedup of a power-law generator loses some edges but the bulk stays.
        assert g.num_edges > 256 * 8 * 0.5

    def test_deterministic(self):
        a = kronecker(scale=7, seed=42)
        b = kronecker(scale=7, seed=42)
        assert np.array_equal(a.neighbors, b.neighbors)
        assert np.array_equal(a.offsets, b.offsets)

    def test_seed_changes_graph(self):
        a = kronecker(scale=7, seed=1)
        b = kronecker(scale=7, seed=2)
        assert not np.array_equal(a.neighbors, b.neighbors)

    def test_power_law_tail(self):
        g = kronecker(scale=11, seed=3)
        # Top 1% of vertices should own far more than 1% of the edges.
        assert powerlaw_tail_ratio(g) > 0.10

    def test_weighted(self):
        g = kronecker(scale=7, weighted=True, seed=1)
        assert g.is_weighted
        assert g.weights.min() >= 1
        assert g.weights.max() <= 255

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            kronecker(scale=0)


class TestUniformRandom:
    def test_size_and_degree_spread(self):
        g = uniform_random(scale=10, edge_factor=8, seed=2)
        assert g.num_vertices == 1024
        degs = g.out_degrees()
        # Uniform graphs have a tight degree distribution.
        assert degs.max() < degs.mean() * 4

    def test_no_powerlaw_tail(self):
        g = uniform_random(scale=11, seed=2)
        assert powerlaw_tail_ratio(g) < 0.05

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            uniform_random(scale=0)


class TestRoadMesh:
    def test_bounded_degree(self):
        g = road_mesh(side=16, shortcut_fraction=0.0)
        assert g.num_vertices == 256
        assert g.out_degrees().max() <= 4

    def test_symmetric(self):
        g = road_mesh(side=10, shortcut_fraction=0.0)
        assert g.is_symmetric()

    def test_connected_corner_to_corner(self):
        from repro.workloads import BFS

        g = road_mesh(side=8, shortcut_fraction=0.0)
        parent = BFS().reference(g, source=0)
        assert parent[g.num_vertices - 1] != -1

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            road_mesh(side=1)


class TestPreferentialAttachment:
    def test_size(self):
        g = preferential_attachment(2000, out_degree=8, seed=4)
        assert g.num_vertices == 2000
        assert g.num_edges > 2000 * 8  # symmetrized

    def test_heavy_tail(self):
        g = preferential_attachment(4000, out_degree=8, seed=4)
        assert powerlaw_tail_ratio(g) > 0.08

    def test_symmetric(self):
        g = preferential_attachment(500, out_degree=4, seed=4)
        assert g.is_symmetric()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            preferential_attachment(4, out_degree=8)


class TestPaperDatasets:
    @pytest.mark.parametrize("name", PAPER_DATASET_NAMES)
    def test_make_dataset_small(self, name):
        g = make_dataset(name, scale_shift=-5)
        assert g.name == name
        assert g.num_vertices > 0
        assert g.num_edges > 0

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            make_dataset("facebook")

    def test_weighted_variants(self):
        g = make_dataset("urand", scale_shift=-5, weighted=True)
        assert g.is_weighted

    def test_paper_datasets_returns_all(self):
        graphs = paper_datasets(scale_shift=-5)
        assert set(graphs) == set(PAPER_DATASET_NAMES)

    def test_default_sizes_stress_scaled_llc(self):
        """Structure footprints must exceed the largest swept LLC (2 MB)."""
        for name in ("kron", "urand", "orkut", "livejournal", "road"):
            g = make_dataset(name)
            structure_bytes = 4 * g.num_edges
            assert structure_bytes > 2 * 2**20, name

    def test_default_property_exceeds_l2(self):
        """Property arrays must dwarf the 32 KB scaled L2."""
        for name in PAPER_DATASET_NAMES:
            g = make_dataset(name)
            assert 4 * g.num_vertices >= 4 * 32 * 1024, name

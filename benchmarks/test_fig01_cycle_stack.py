"""Bench: regenerate Fig. 1 (cycle stack of PR on orkut)."""

from repro.experiments import run_fig01


def test_fig01_cycle_stack(benchmark, bench_config, show):
    result = benchmark.pedantic(
        run_fig01, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    row = result.rows[0]
    # Paper shape: DRAM stalls are the largest component, base is small.
    assert row["DRAM"] > row["base"]
    assert row["DRAM"] > 0.25

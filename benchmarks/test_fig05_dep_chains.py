"""Bench: regenerate Figs. 5/6 (dependency chains, producer/consumer roles)."""

from repro.experiments import run_fig05


def test_fig05_dep_chains(benchmark, bench_config, show):
    result = benchmark.pedantic(
        run_fig05, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    for row in result.rows:
        # Paper: chains are short (mean 2.5) ...
        assert row["mean_chain_len"] < 4.0
        # ... property is the consumer, structure the producer.
        assert row["prop_consumer_%"] > row["prop_producer_%"]
        assert row["struct_producer_%"] > row["struct_consumer_%"]

"""Bench: regenerate Fig. 14 (prefetch accuracy by data type)."""

from repro.experiments import run_fig14


def test_fig14_prefetch_accuracy(benchmark, bench_config, show):
    result = benchmark.pedantic(
        run_fig14, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    # Paper: the sequential-order algorithms (CC, PR) have the highest
    # DROPLET accuracies (~95-100% structure).
    seq = [
        r for r in result.rows if r["workload"] in ("CC", "PR")
    ]
    if seq:
        mean_acc = sum(r["droplet_struct"] for r in seq) / len(seq)
        assert mean_acc > 80

"""Bench: regenerate Fig. 3 (4x ROB: bandwidth delta and speedup)."""

from repro.experiments import run_fig03


def test_fig03_rob_sweep(benchmark, bench_config, show, full_scale):
    result = benchmark.pedantic(
        run_fig03, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    if full_scale:
        speedups = result.column("speedup")
        mean = sum(speedups) / len(speedups)
        # Paper: +1.44% average; we accept anything clearly "small".
        assert mean < 1.25

"""Bench: regenerate Fig. 12 (L2 hit rate under prefetching)."""

from repro.experiments import run_fig12


def test_fig12_l2_hit_rate(benchmark, bench_config, show):
    result = benchmark.pedantic(
        run_fig12, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    means = {r["workload"]: r for r in result.rows if r["dataset"] == "MEAN"}
    for workload, row in means.items():
        # Paper: DROPLET turns the underutilized L2 into a useful resource.
        assert row["droplet"] > row["none"], workload

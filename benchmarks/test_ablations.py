"""Ablations of DROPLET's design decisions (paper Table IV).

Each Table IV decision is tested against its counterfactual:

* **When to prefetch** — chase structure *prefetches* (DROPLET) vs.
  chase structure *demands* (too late: chains are short).
* **Where to put prefetched data** — fill the L2 (DROPLET) vs. fill the
  L1 as well (pollutes the one cache that is actually useful).
* **Decoupling** — MPP at the MC (zero issue penalty) vs. progressively
  longer refill-path penalties, isolating the timeliness benefit the
  monolithic-L1 design gives up.
* **Streamer reach** — prefetch distance sweep around Table V's 16.
* **Multi-property chasing** (paper §VI) — BC gathers depth/sigma/delta
  through the same IDs; chasing all three vs. only the primary array.
"""

from repro.droplet.composite import PrefetchSetup
from repro.droplet.mpp import MPPConfig
from repro.experiments import ExperimentConfig, get_trace_run
from repro.prefetch.stream import DataAwareStreamer
from repro.system import simulate


def _droplet_setup(**overrides) -> PrefetchSetup:
    base = dict(
        name=overrides.pop("name", "droplet-variant"),
        l2_prefetcher=DataAwareStreamer(**overrides.pop("streamer_kwargs", {})),
        use_mpp=True,
        mpp_config=MPPConfig(identifies_structure=False),
        streamer_targets_l3_queue=True,
    )
    base.update(overrides)
    return PrefetchSetup(**base)


def _cell(bench_config, workload="PR", dataset="kron"):
    if workload not in bench_config.workloads:
        workload = bench_config.workloads[0]
    if dataset not in bench_config.datasets:
        dataset = bench_config.datasets[0]
    return get_trace_run(
        workload, dataset, bench_config.max_refs, bench_config.scale_shift
    )


def test_ablation_mpp_trigger(benchmark, bench_config, show, full_scale):
    """Table IV 'when to prefetch': prefetch-triggered beats demand-triggered."""
    run = _cell(bench_config)

    def sweep():
        base = simulate(run, setup="none")
        rows = []
        for trigger in ("prefetch", "demand"):
            res = simulate(run, setup=_droplet_setup(name="droplet-" + trigger, mpp_trigger=trigger))
            late = sum(c.late[1] for c in res.ledger.counters.values())
            useful = sum(c.useful[1] for c in res.ledger.counters.values())
            rows.append(
                {
                    "mpp_trigger": trigger,
                    "speedup": round(res.speedup_vs(base), 3),
                    "late_prop_pf_%": round(100 * late / useful if useful else 0, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "MPP trigger: prefetch vs demand fills", rows))
    by = {r["mpp_trigger"]: r for r in rows}
    if full_scale:
        assert by["prefetch"]["speedup"] >= by["demand"]["speedup"]
        assert by["prefetch"]["late_prop_pf_%"] <= by["demand"]["late_prop_pf_%"]


def test_ablation_fill_level(benchmark, bench_config, show, full_scale):
    """Table IV 'where to put data': L2 fills avoid L1 pollution."""
    run = _cell(bench_config)

    def sweep():
        base = simulate(run, setup="none")
        rows = []
        for name, into_l1 in (("fill-L2", False), ("fill-L1-too", True)):
            res = simulate(run, setup=_droplet_setup(name=name, fill_into_l1=into_l1))
            l1 = res.hierarchy.l1s[0].stats
            rows.append(
                {
                    "fill": name,
                    "speedup": round(res.speedup_vs(base), 3),
                    "l1_hit_rate": round(l1.hit_rate, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "Prefetch fill level: L2 vs L1", rows))
    if full_scale:
        by = {r["fill"]: r for r in rows}
        # L1 fills must not be better: pollution offsets the closer placement.
        assert by["fill-L2"]["speedup"] >= by["fill-L1-too"]["speedup"] - 0.02


def test_ablation_decoupling_penalty(benchmark, bench_config, show, full_scale):
    """Decoupling: performance degrades as the MPP moves away from the MC."""
    run = _cell(bench_config)
    penalties = (0, 40, 80, 160)

    def sweep():
        base = simulate(run, setup="none")
        rows = []
        for penalty in penalties:
            res = simulate(
                run,
                setup=_droplet_setup(
                    name="droplet-pen%d" % penalty, mpp_issue_penalty=penalty
                ),
            )
            rows.append(
                {"issue_penalty": penalty, "speedup": round(res.speedup_vs(base), 3)}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "MPP issue-penalty (decoupling) sweep", rows))
    if full_scale:
        speedups = [r["speedup"] for r in rows]
        assert speedups[0] >= speedups[-1]  # more delay never helps


def test_ablation_streamer_distance(benchmark, bench_config, show):
    """Table V prefetch distance: too short starves, 16 is a good spot."""
    run = _cell(bench_config)
    distances = (2, 8, 16, 32)

    def sweep():
        base = simulate(run, setup="none")
        rows = []
        for distance in distances:
            res = simulate(
                run,
                setup=_droplet_setup(
                    name="droplet-d%d" % distance,
                    streamer_kwargs={"distance": distance},
                ),
            )
            rows.append(
                {"distance": distance, "speedup": round(res.speedup_vs(base), 3)}
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "Streamer prefetch-distance sweep", rows))
    assert all(r["speedup"] > 0 for r in rows)


def test_ablation_multi_property_bc(benchmark, bench_config, show, full_scale):
    """Paper §VI: chasing all of BC's gathered arrays vs only `depth`."""
    if "BC" in bench_config.workloads:
        run = get_trace_run("BC", bench_config.datasets[0], bench_config.max_refs, bench_config.scale_shift)
    else:
        run = _cell(bench_config)

    def sweep():
        base = simulate(run, setup="none")
        single = simulate(run, setup="droplet", multi_property=False)
        multi = simulate(run, setup="droplet", multi_property=True)
        return [
            {"chased": "primary-only", "speedup": round(single.speedup_vs(base), 3),
             "pMPKI": round(single.llc_mpki(), 2)},
            {"chased": "all-gathered", "speedup": round(multi.speedup_vs(base), 3),
             "pMPKI": round(multi.llc_mpki(), 2)},
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "Multi-property chasing (BC, paper §VI)", rows))
    if full_scale and run.workload == "BC":
        by = {r["chased"]: r for r in rows}
        # Chasing every gathered array removes more misses.
        assert by["all-gathered"]["pMPKI"] <= by["primary-only"]["pMPKI"] + 0.5


def test_ablation_feedback_directed_streamer(benchmark, bench_config, show):
    """Extension: the full FDP controller of [53] vs the static Table V
    streamer inside DROPLET."""
    from repro.prefetch.adaptive import AdaptiveDataAwareStreamer, FDPLevels

    run = _cell(bench_config)

    def sweep():
        base = simulate(run, setup="none")
        static = simulate(run, setup=_droplet_setup(name="droplet-static"))
        fdp_streamer = AdaptiveDataAwareStreamer(thresholds=FDPLevels(interval=128))
        adaptive = simulate(
            run,
            setup=PrefetchSetup(
                name="droplet-fdp",
                l2_prefetcher=fdp_streamer,
                use_mpp=True,
                mpp_config=MPPConfig(identifies_structure=False),
                streamer_targets_l3_queue=True,
            ),
        )
        return [
            {"streamer": "static (Table V)", "speedup": round(static.speedup_vs(base), 3),
             "final_level": "-"},
            {"streamer": "feedback-directed", "speedup": round(adaptive.speedup_vs(base), 3),
             "final_level": str(fdp_streamer.level)},
        ]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "Static vs feedback-directed streamer", rows))
    speedups = [r["speedup"] for r in rows]
    assert all(s > 0.8 for s in speedups)


def test_ablation_direction_optimizing_bfs(benchmark, bench_config, show, full_scale):
    """Extension: GAP's direction-optimizing BFS vs our default top-down.

    Bottom-up sweeps stream the structure array sequentially, but their
    *early exit* (stop scanning once a frontier parent is found) leaves
    most of each prefetched line — and every property line the MPP chased
    for it — untouched.  The measured accuracy drop and droplet slowdown
    quantify why worklist-aware prefetchers (Ainsworth & Jones [40])
    target exactly this regime, and why the paper reports BFS as
    DROPLET's weakest workload.
    """
    from repro.experiments import get_graph
    from repro.workloads import get_workload

    dataset = "urand" if "urand" in bench_config.datasets else bench_config.datasets[0]
    graph = get_graph(dataset, scale_shift=bench_config.scale_shift)
    bfs = get_workload("BFS")

    def sweep():
        rows = []
        for label, do in (("top-down", False), ("direction-opt", True)):
            run = bfs.run(
                graph,
                max_refs=bench_config.max_refs,
                skip_refs=bfs.recommended_skip(graph),
                direction_optimizing=do,
            )
            base = simulate(run, setup="none")
            droplet = simulate(run, setup="droplet", multi_property=do)
            rows.append(
                {
                    "bfs_variant": label,
                    "droplet_speedup": round(droplet.speedup_vs(base), 3),
                    "struct_pf_acc": round(
                        droplet.prefetch_accuracy(), 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "BFS: top-down vs direction-optimizing", rows))
    if full_scale:
        by = {r["bfs_variant"]: r for r in rows}
        # Early-exit bottom-up wastes chased prefetches: accuracy drops.
        assert by["direction-opt"]["struct_pf_acc"] <= by["top-down"]["struct_pf_acc"] + 0.05
        assert all(r["droplet_speedup"] > 0.6 for r in rows)


def test_ablation_edge_centric_layout(benchmark, bench_config, show, full_scale):
    """Paper §VI: DROPLET on an edge-centric (COO) layout, unchanged.

    The flat edge array is the structure stream; the MPP chases the
    gather indices out of prefetched edge lines exactly as it chases
    neighbor IDs out of CSR lines.
    """
    from repro.experiments import get_graph
    from repro.workloads import get_workload

    graph = get_graph("kron" if "kron" in bench_config.datasets else bench_config.datasets[0],
                      scale_shift=bench_config.scale_shift)

    def sweep():
        rows = []
        for name in ("PR", "PR-EDGE"):
            w = get_workload(name)
            run = w.run(
                graph,
                max_refs=bench_config.max_refs,
                skip_refs=w.recommended_skip(graph),
            )
            base = simulate(run, setup="none")
            droplet = simulate(run, setup="droplet")
            rows.append(
                {
                    "layout": "CSR" if name == "PR" else "edge-centric",
                    "droplet_speedup": round(droplet.speedup_vs(base), 3),
                    "llc_mpki_cut_%": round(
                        100 * (1 - droplet.llc_mpki() / base.llc_mpki()), 1
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    from repro.experiments import ExperimentResult

    show(ExperimentResult("ablation", "DROPLET across data layouts (paper §VI)", rows))
    if full_scale:
        # DROPLET delivers on both layouts without modification.
        assert all(r["droplet_speedup"] > 1.3 for r in rows)

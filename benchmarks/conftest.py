"""Benchmark configuration.

The benchmark suite regenerates every table and figure of the paper at
full reproduction scale.  Set ``REPRO_BENCH_QUICK=1`` to run the reduced
matrix instead (useful for smoke-testing the harness), and
``REPRO_BENCH_WORKERS=N`` to fan the Fig. 4/11 simulation matrices out
over ``N`` worker processes (results are bit-identical to serial runs).
Traces come from the shared on-disk cache (``REPRO_TRACE_CACHE``), so a
second benchmark run skips trace generation entirely.

Results print as text tables; compare them against the paper-vs-measured
record in EXPERIMENTS.md.
"""

import os

import pytest

from repro.experiments import ExperimentConfig
from repro.runtime import SweepRunner


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    """Full paper matrix unless REPRO_BENCH_QUICK is set."""
    if os.environ.get("REPRO_BENCH_QUICK"):
        return ExperimentConfig.quick()
    return ExperimentConfig()


@pytest.fixture(scope="session")
def sweep_runner() -> SweepRunner | None:
    """Parallel sweep runner when REPRO_BENCH_WORKERS asks for one.

    ``None`` keeps the serial in-process path (the default), so cached
    figure matrices stay shared across benchmark modules.
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "0") or 0)
    if workers < 2:
        return None
    return SweepRunner(workers=workers)


@pytest.fixture
def show(capsys):
    """Print an ExperimentResult table to the live terminal."""

    def _show(result):
        with capsys.disabled():
            print("\n" + result.to_text())
        return result

    return _show


@pytest.fixture(scope="session")
def full_scale(bench_config) -> bool:
    """Whether the paper-regime shape assertions apply.

    The quick matrix uses graphs far smaller than the scaled caches, which
    is outside the regime the paper's observations are stated in.
    """
    return bench_config.scale_shift >= 0

"""Bench: regenerate Fig. 15 (extra bandwidth, BPKI)."""

from repro.experiments import run_fig15


def test_fig15_bandwidth(benchmark, bench_config, show):
    result = benchmark.pedantic(
        run_fig15, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    extras = result.column("droplet_extra_%")
    mean_extra = sum(extras) / len(extras)
    # Paper: DROPLET's extra bandwidth is 6.5-19.9%; allow some headroom.
    assert mean_extra < 35

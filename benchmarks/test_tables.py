"""Bench: regenerate Tables I-V and the §V-D overhead report."""

from repro.experiments import (
    run_overheads,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


def test_tables(benchmark, bench_config, show):
    def render_all():
        return [
            run_table1(),
            run_table2(),
            run_table3(bench_config),
            run_table4(),
            run_table5(),
            run_overheads(),
        ]

    results = benchmark.pedantic(render_all, rounds=1, iterations=1)
    for result in results:
        show(result)
    overheads = {r["item"]: r["value"] for r in results[-1].rows}
    # Paper §V-D ballparks.
    assert overheads["page table extra"].startswith("64 B")

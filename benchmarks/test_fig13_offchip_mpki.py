"""Bench: regenerate Fig. 13 (off-chip demand MPKI by data type)."""

from repro.experiments import run_fig13


def test_fig13_offchip_mpki(benchmark, bench_config, show):
    result = benchmark.pedantic(
        run_fig13, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    for row in result.rows:
        # The additive paper story, per cell: the streamer cuts structure
        # misses; DROPLET never leaves structure misses above the baseline.
        assert row["stream_struct"] <= row["none_struct"] + 0.5
        assert row["droplet_struct"] <= row["none_struct"] + 0.5
        # streamMPP1 (the MPP's debut) cuts property misses vs stream.
        # Cells where the conventional streamer finds no streams to chase
        # (BFS on uniform graphs) may pollute slightly; allow 10% slack.
        assert row["streamMPP1_prop"] <= 1.10 * row["stream_prop"] + 0.5

"""Bench: regenerate Fig. 4 (LLC capacity sweep, L2 sweep, off-chip mix)."""

from repro.experiments import run_fig04a, run_fig04b, run_fig04c


def test_fig04a_llc_capacity(benchmark, bench_config, show, sweep_runner):
    result = benchmark.pedantic(
        run_fig04a,
        args=(bench_config,),
        kwargs={"runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    show(result)
    mean = result.rows[-1]
    assert mean["workload"] == "MEAN"
    # MPKI falls monotonically with LLC capacity, as in the paper.
    assert mean["mpki_1x"] >= mean["mpki_2x"] >= mean["mpki_4x"] >= mean["mpki_8x"]


def test_fig04b_l2_sweep(benchmark, bench_config, show, full_scale, sweep_runner):
    result = benchmark.pedantic(
        run_fig04b,
        args=(bench_config,),
        kwargs={"runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    show(result)
    if full_scale:
        # Paper: negligible sensitivity — no-L2 within a few % of baseline.
        for row in result.rows:
            assert abs(row["speedup_no-L2"] - 1.0) < 0.15


def test_fig04c_offchip_by_type(benchmark, bench_config, show, sweep_runner):
    result = benchmark.pedantic(
        run_fig04c,
        args=(bench_config,),
        kwargs={"runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    show(result)
    first, last = result.rows[0], result.rows[-1]
    prop_drop = first["property_offchip_%"] - last["property_offchip_%"]
    struct_drop = first["structure_offchip_%"] - last["structure_offchip_%"]
    # Paper: property benefits most from a larger LLC.
    assert prop_drop >= struct_drop

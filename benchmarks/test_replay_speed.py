"""Replay-throughput benchmark: batch fast path vs the scalar oracle, v2.

Every registered workload is traced once and replayed through both paths
for each benchmarked prefetcher setup — ``none`` (the v1 baseline
matrix) plus the two paper-central prefetch-active setups ``stream``
and ``droplet``.  The scalar oracle is timed with bare ``perf_counter``
best-of-N; the fast path runs under ``pytest-benchmark`` so
``--benchmark-json`` artifacts carry the full distribution.

A final reporting test writes ``BENCH_replay.json`` — the
machine-portable speedup summary that CI's ``bench-smoke`` job compares
against the committed baseline (``benchmarks/BENCH_replay.json``) — and
enforces the v2 headline target: **>= 3x geomean replay throughput over
the prefetch-active matrix** (six workloads x {stream, droplet}).
Per-cell speedups vary with trace locality and machine noise (roughly
2.4-5.9x on the reference box), so individual cells are gated only at
break-even; the geomean carries the contract.

Speedups are reported amortized: the replay plan is pure derived data
cached on the trace, exactly how sweeps (many setups x one trace) and
repeated replays use the engine.  Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_replay_speed.py -q
"""

import json
import math
import os
import time

import pytest

from repro.graph import kronecker
from repro.system import Machine, SystemConfig
from repro.workloads.registry import WORKLOADS, get_workload

MAX_REFS = 200_000
GRAPH_SCALE = 11
SCALAR_ROUNDS = 2
FAST_ROUNDS = 3
SETUPS = ("none", "stream", "droplet")
#: Setups whose cells form the gated prefetch matrix.
MATRIX_SETUPS = ("stream", "droplet")
MATRIX_TARGET = 3.0

_RESULTS: dict[str, dict[str, dict]] = {}


@pytest.fixture(scope="module")
def bench_graphs():
    graph = kronecker(scale=GRAPH_SCALE, edge_factor=8, seed=5, name="bench-kron")
    weighted = kronecker(
        scale=GRAPH_SCALE, edge_factor=8, weighted=True, seed=5,
        name="bench-kron-w",
    )
    return graph, weighted


@pytest.fixture(scope="module")
def bench_runs(bench_graphs):
    graph, weighted = bench_graphs
    runs = {}
    for name in WORKLOADS:
        g = weighted if name == "SSSP" else graph
        runs[name] = get_workload(name).run(g, max_refs=MAX_REFS)
    return runs


def _machine(run, setup, fast_path):
    return Machine(
        SystemConfig.paper_baseline(),
        layout=run.layout,
        setup=setup,
        fast_path=fast_path,
    )


@pytest.mark.parametrize("setup", SETUPS)
@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_replay_speed(benchmark, bench_runs, workload, setup):
    run = bench_runs[workload]
    trace = run.trace

    scalar_times = []
    for _ in range(SCALAR_ROUNDS):
        m = _machine(run, setup, "off")
        t0 = time.perf_counter()
        scalar_result = m.run(trace)
        scalar_times.append(time.perf_counter() - t0)
    scalar_s = min(scalar_times)

    def fresh():
        return (_machine(run, setup, "on"),), {}

    fast_result = benchmark.pedantic(
        lambda m: m.run(trace), setup=fresh, rounds=FAST_ROUNDS
    )
    fast_s = benchmark.stats.stats.min

    # The benchmark is only meaningful if both paths agree.
    assert fast_result.fast_path
    assert fast_result.cycles == scalar_result.cycles
    assert fast_result.instructions == scalar_result.instructions

    speedup = scalar_s / fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup
    _RESULTS.setdefault(workload, {})[setup] = {
        "refs": len(trace),
        "scalar_s": round(scalar_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(speedup, 3),
        "refs_per_s_scalar": round(len(trace) / scalar_s),
        "refs_per_s_fast": round(len(trace) / fast_s),
    }
    # Every cell must at least break even; the 3x target applies to the
    # prefetch-matrix geomean below, not to individual noisy cells.
    assert speedup > 1.0, _RESULTS[workload][setup]


def _geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def test_write_report(bench_runs):
    """Aggregate, write BENCH_replay.json, enforce the matrix target."""
    missing = [
        (w, s)
        for w in WORKLOADS
        for s in SETUPS
        if s not in _RESULTS.get(w, {})
    ]
    assert not missing, "benchmark cells did not all run: %s" % missing

    matrix = [
        _RESULTS[w][s]["speedup"] for w in WORKLOADS for s in MATRIX_SETUPS
    ]
    baseline = [_RESULTS[w]["none"]["speedup"] for w in WORKLOADS]
    matrix_geomean = round(_geomean(matrix), 3)
    report = {
        "schema": "repro-replay-bench-v2",
        "config": {
            "baseline": "paper_baseline",
            "setups": list(SETUPS),
            "max_refs": MAX_REFS,
            "graph": "kron-scale%d-ef8" % GRAPH_SCALE,
            "timing": "best-of-%d, plan amortized" % FAST_ROUNDS,
        },
        "cells": _RESULTS,
        "aggregates": {
            "prefetch_matrix_geomean": matrix_geomean,
            "prefetch_matrix_cells": len(matrix),
            "prefetch_matrix_min": min(matrix),
            "prefetch_matrix_max": max(matrix),
            "baseline_geomean": round(_geomean(baseline), 3),
        },
        "headline": {
            "matrix": "six workloads x %s" % (list(MATRIX_SETUPS),),
            "geomean_speedup": matrix_geomean,
            "target": MATRIX_TARGET,
        },
    }
    out = os.environ.get("REPRO_BENCH_REPLAY_OUT", "BENCH_replay.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    assert matrix_geomean >= MATRIX_TARGET, report["headline"]

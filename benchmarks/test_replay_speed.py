"""Replay-throughput benchmark: batch fast path vs the scalar oracle.

Every registered workload is traced once (paper-baseline hierarchy,
no-prefetch setup) and replayed through both paths.  The scalar oracle
is timed with bare ``perf_counter`` best-of-N; the fast path runs under
``pytest-benchmark`` so ``--benchmark-json`` artifacts carry the full
distribution.  A final reporting test writes ``BENCH_replay.json`` —
the machine-portable speedup summary that CI's ``bench-smoke`` job
compares against the committed baseline
(``benchmarks/BENCH_replay.json``) — and enforces the headline target:
**>= 3x replay throughput on the no-prefetch baseline** (PageRank, the
paper's canonical gather workload).

Speedups are reported amortized: the replay plan is pure derived data
cached on the trace, exactly how sweeps (many setups x one trace) and
repeated replays use the engine.  Run directly with::

    PYTHONPATH=src python -m pytest benchmarks/test_replay_speed.py -q
"""

import json
import os
import time

import pytest

from repro.graph import kronecker
from repro.system import Machine, SystemConfig
from repro.workloads.registry import WORKLOADS, get_workload

MAX_REFS = 60_000
SCALAR_ROUNDS = 2
FAST_ROUNDS = 4
HEADLINE_WORKLOAD = "PR"
HEADLINE_TARGET = 3.0

_RESULTS: dict[str, dict] = {}


@pytest.fixture(scope="module")
def bench_graphs():
    graph = kronecker(scale=12, edge_factor=8, seed=5, name="bench-kron")
    weighted = kronecker(
        scale=12, edge_factor=8, weighted=True, seed=5, name="bench-kron-w"
    )
    return graph, weighted


@pytest.fixture(scope="module")
def bench_runs(bench_graphs):
    graph, weighted = bench_graphs
    runs = {}
    for name in WORKLOADS:
        g = weighted if name == "SSSP" else graph
        runs[name] = get_workload(name).run(g, max_refs=MAX_REFS)
    return runs


def _machine(run, fast_path):
    return Machine(
        SystemConfig.paper_baseline(),
        layout=run.layout,
        setup="none",
        fast_path=fast_path,
    )


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
def test_replay_speed(benchmark, bench_runs, workload):
    run = bench_runs[workload]
    trace = run.trace

    scalar_times = []
    for _ in range(SCALAR_ROUNDS):
        m = _machine(run, "off")
        t0 = time.perf_counter()
        scalar_result = m.run(trace)
        scalar_times.append(time.perf_counter() - t0)
    scalar_s = min(scalar_times)

    def fresh():
        return (_machine(run, "on"),), {}

    fast_result = benchmark.pedantic(
        lambda m: m.run(trace), setup=fresh, rounds=FAST_ROUNDS
    )
    fast_s = benchmark.stats.stats.min

    # The benchmark is only meaningful if both paths agree.
    assert fast_result.fast_path
    assert fast_result.cycles == scalar_result.cycles
    assert fast_result.instructions == scalar_result.instructions

    speedup = scalar_s / fast_s
    benchmark.extra_info["scalar_s"] = scalar_s
    benchmark.extra_info["speedup"] = speedup
    _RESULTS[workload] = {
        "refs": len(trace),
        "scalar_s": round(scalar_s, 6),
        "fast_s": round(fast_s, 6),
        "speedup": round(speedup, 3),
        "refs_per_s_scalar": round(len(trace) / scalar_s),
        "refs_per_s_fast": round(len(trace) / fast_s),
    }
    # Every workload must at least break even; the 3x target applies to
    # the headline below, not to miss-dominated traversals.
    assert speedup > 1.0, _RESULTS[workload]


def test_write_report(bench_runs):
    """Aggregate, write BENCH_replay.json, enforce the headline target."""
    assert set(_RESULTS) == set(WORKLOADS), (
        "benchmark cases did not all run: %s" % sorted(_RESULTS)
    )
    headline = _RESULTS[HEADLINE_WORKLOAD]["speedup"]
    report = {
        "schema": "repro-replay-bench-v1",
        "config": {
            "baseline": "paper_baseline",
            "setup": "none",
            "max_refs": MAX_REFS,
            "graph": "kron-scale12-ef8",
            "timing": "best-of-%d, plan amortized" % FAST_ROUNDS,
        },
        "workloads": _RESULTS,
        "headline": {
            "workload": HEADLINE_WORKLOAD,
            "speedup": headline,
            "target": HEADLINE_TARGET,
        },
    }
    out = os.environ.get("REPRO_BENCH_REPLAY_OUT", "BENCH_replay.json")
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    assert headline >= HEADLINE_TARGET, report["headline"]

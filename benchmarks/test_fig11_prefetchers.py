"""Bench: regenerate Fig. 11 (speedups of the six prefetcher configs).

This is the paper's headline result.  The per-cell table (Fig. 11a) and
the per-workload geomeans (Fig. 11b) print on completion.
"""

from repro.experiments import geomean, run_fig11a, run_fig11b


def test_fig11a_per_cell(benchmark, bench_config, show, sweep_runner):
    result = benchmark.pedantic(
        run_fig11a,
        args=(bench_config,),
        kwargs={"runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    show(result)
    assert len(result.rows) == len(bench_config.workloads) * len(
        bench_config.datasets
    )


def test_fig11b_geomeans(bench_config, show, benchmark, full_scale, sweep_runner):
    result = benchmark.pedantic(
        run_fig11b,
        args=(bench_config,),
        kwargs={"runner": sweep_runner},
        rounds=1,
        iterations=1,
    )
    show(result)
    if full_scale:
        droplet = result.column("droplet")
        stream = result.column("stream")
        ghb = result.column("ghb")
        # Paper shape: DROPLET improves on the baseline everywhere...
        assert geomean(droplet) > 1.05
        # ... beats the conventional streamer overall ...
        assert geomean(droplet) > geomean(stream)
        # ... and GHB is the weakest prefetcher.
        assert geomean(ghb) <= geomean(stream)

"""Bench: regenerate Fig. 7 (hierarchy usage by data type)."""

from repro.experiments import run_fig07


def test_fig07_hierarchy_usage(benchmark, bench_config, show):
    result = benchmark.pedantic(
        run_fig07, args=(bench_config,), rounds=1, iterations=1
    )
    show(result)
    struct_rows = [r for r in result.rows if r["type"] == "structure"]
    for row in struct_rows:
        # Paper: structure is serviced by the L1 and the DRAM; the private
        # L2 contributes almost nothing.
        assert row["L1_%"] + row["DRAM_%"] > 75
        assert row["L2_%"] < 20

"""Setup shim for environments without the `wheel` package (offline pip -e)."""
from setuptools import setup

setup()

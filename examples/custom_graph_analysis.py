#!/usr/bin/env python3
"""Bring-your-own-graph: analyze an edge list with the full toolchain.

Shows the path a downstream user would take with their own data:

1. load (or synthesize) an edge-list graph,
2. check whether its topology is prefetch-friendly (degree tail, size
   relative to the simulated caches),
3. trace a workload of choice and measure how much DROPLET would help,
4. decide — with numbers — whether a data-aware prefetcher is worth it
   for this graph.

Run:  python examples/custom_graph_analysis.py [path/to/edges.el]
Without an argument, a small social-network-like graph is synthesized
and written to a temp file first, so the script is self-contained.
"""

import sys
import tempfile
from pathlib import Path

from repro.graph import (
    graph_stats,
    powerlaw_tail_ratio,
    preferential_attachment,
    read_edge_list,
    write_edge_list,
)
from repro.system import SystemConfig, compare_setups
from repro.trace import DataType
from repro.workloads import get_workload


def load_graph(argv: list[str]):
    if argv:
        path = Path(argv[0])
        print("loading edge list:", path)
        return read_edge_list(path)
    # Self-contained demo: synthesize, round-trip through the loader.
    synthetic = preferential_attachment(40_000, out_degree=12, seed=11, name="demo")
    tmp = Path(tempfile.mkdtemp()) / "demo.el"
    write_edge_list(synthetic, tmp)
    print("no edge list given; synthesized one at", tmp)
    return read_edge_list(tmp)


def main() -> None:
    graph = load_graph(sys.argv[1:])
    stats = graph_stats(graph)
    print("graph:", stats.as_row())

    config = SystemConfig.scaled_baseline()
    property_bytes = 4 * graph.num_vertices
    tail = powerlaw_tail_ratio(graph)
    print(
        "property array %.0f KB vs LLC %.0f KB; top-1%% vertices own %.0f%% "
        "of edges" % (property_bytes / 1024, config.l3.size_bytes / 1024, 100 * tail)
    )
    if property_bytes < config.l3.size_bytes:
        print(
            "note: property data fits in the LLC — expect modest prefetcher "
            "gains (the memory wall the paper attacks is not present)"
        )

    workload = get_workload("PR")
    run = workload.run(
        graph, max_refs=120_000, skip_refs=workload.recommended_skip(graph)
    )
    results = compare_setups(run, setups=("none", "stream", "droplet"))
    base = results["none"]

    print("\nworkload: PageRank, %d refs traced" % run.trace.num_refs)
    print("baseline: IPC %.3f, DRAM-bound %.0f%%, property off-chip %.0f%%" % (
        base.ipc,
        100 * base.cycle_stack.dram_bound_fraction(),
        100 * base.offchip_fraction(DataType.PROPERTY),
    ))
    for name in ("stream", "droplet"):
        res = results[name]
        print(
            "%-8s speedup %.3f   LLC MPKI %6.1f -> %6.1f   extra bandwidth %+.0f%%"
            % (
                name,
                res.speedup_vs(base),
                base.llc_mpki(),
                res.llc_mpki(),
                100 * (res.bpki() / base.bpki() - 1.0),
            )
        )

    droplet_gain = results["droplet"].speedup_vs(base)
    stream_gain = results["stream"].speedup_vs(base)
    print(
        "\nverdict: DROPLET buys %.0f%% over no prefetching and %.0f%% over a "
        "conventional streamer on this graph."
        % (100 * (droplet_gain - 1.0), 100 * (droplet_gain / stream_gain - 1.0))
    )


if __name__ == "__main__":
    main()

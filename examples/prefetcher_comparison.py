#!/usr/bin/env python3
"""Fig. 11 in miniature: all six prefetchers across several datasets.

Runs the full prefetcher shoot-out (GHB, VLDP, conventional stream,
streamMPP1, DROPLET, monolithic-L1 DROPLET) for one workload across the
requested datasets and prints the Fig. 11a-style speedup table plus the
Fig. 13-style demand-MPKI breakdown that explains it.

Run:  python examples/prefetcher_comparison.py [workload] [dataset ...]
e.g.  python examples/prefetcher_comparison.py CC kron road
"""

import sys

from repro.graph import make_dataset
from repro.system import compare_setups
from repro.trace import DataType
from repro.workloads import get_workload

SETUPS = ("none", "ghb", "vldp", "stream", "streamMPP1", "droplet", "monoDROPLETL1")


def run_one(workload_name: str, dataset_name: str) -> None:
    workload = get_workload(workload_name)
    graph = make_dataset(dataset_name, weighted=workload.needs_weights)
    run = workload.run(
        graph, max_refs=150_000, skip_refs=workload.recommended_skip(graph)
    )
    results = compare_setups(run, setups=SETUPS)
    base = results["none"]

    print("\n### %s on %s" % (workload_name, dataset_name))
    print(
        "%-14s %8s %9s %9s %8s"
        % ("config", "speedup", "sMPKI", "pMPKI", "BPKI")
    )
    for name in SETUPS:
        res = results[name]
        print(
            "%-14s %8.3f %9.2f %9.2f %8.1f"
            % (
                name,
                res.speedup_vs(base),
                res.llc_mpki(DataType.STRUCTURE),
                res.llc_mpki(DataType.PROPERTY),
                res.bpki(),
            )
        )
    ranked = sorted(
        (results[n].speedup_vs(base), n) for n in SETUPS if n != "none"
    )
    print("best: %s (%.3fx), worst: %s (%.3fx)" % (
        ranked[-1][1], ranked[-1][0], ranked[0][1], ranked[0][0]))


def main() -> None:
    args = sys.argv[1:]
    workload = args[0] if args else "PR"
    datasets = args[1:] or ["kron", "road"]
    for dataset in datasets:
        run_one(workload, dataset)
    print(
        "\nPaper shape to look for: DROPLET best on power-law datasets "
        "(kron/urand/orkut/livejournal); streamMPP1 best on road; GHB weakest."
    )


if __name__ == "__main__":
    main()

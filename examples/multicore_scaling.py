#!/usr/bin/env python3
"""Quad-core mode: partitioned PageRank on the shared memory hierarchy.

The paper's platform is a quad-core (Table I) although its analysis is
core-count-insensitive (§III-A).  This example runs the same PageRank
work as 1, 2 and 4 statically partitioned cores sharing one LLC and
memory controller, and shows:

* per-core cycle balance,
* shared-LLC pressure as cores multiply,
* that DROPLET's benefit survives multi-core contention.

Run:  python examples/multicore_scaling.py
"""

from repro.graph import make_dataset
from repro.system import SystemConfig, run_multicore
from repro.workloads import get_workload


def main() -> None:
    graph = make_dataset("kron", scale_shift=-1)
    pagerank = get_workload("PR")
    per_core_refs = 60_000

    for num_cores in (1, 2, 4):
        # Each core's warm-up (contribution pass) covers only its vertex
        # slice, so the per-core skip shrinks with the partition.
        skip = pagerank.recommended_skip(graph) // num_cores
        runs = pagerank.run_partitioned(
            graph, num_cores=num_cores, max_refs=per_core_refs, skip_refs=skip
        )
        traces = [r.trace for r in runs]
        config = SystemConfig.scaled_baseline(num_cores=num_cores)
        base = run_multicore(traces, config=config, layout=runs[0].layout)
        droplet = run_multicore(
            traces,
            config=config,
            layout=runs[0].layout,
            setup="droplet",
            chased_property=pagerank.gathered_property,
        )
        spread = (
            max(base.per_core_cycles) / min(base.per_core_cycles)
            if min(base.per_core_cycles)
            else float("nan")
        )
        print(
            "%d core(s): agg IPC %.3f  LLC MPKI %6.1f  core imbalance %.2fx  "
            "DROPLET speedup %.3f"
            % (
                num_cores,
                base.aggregate_ipc,
                base.llc_mpki(),
                spread,
                droplet.speedup_vs(base),
            )
        )
    print(
        "\nCores stay balanced, aggregate throughput scales, and DROPLET "
        "keeps a clear advantage under shared-LLC/DRAM contention — "
        "consistent with the paper's choice (§III-A) to analyze a reduced "
        "core count."
    )


if __name__ == "__main__":
    main()

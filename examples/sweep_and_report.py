#!/usr/bin/env python3
"""Parameter sweep with archived results: LLC size x prefetcher grid.

Shows the reporting workflow a performance study would use:

1. sweep a 2-D grid (LLC capacity x prefetcher configuration),
2. summarize every run into JSON-safe records,
3. archive them (JSON) and render a pivot table,
4. diff two configurations metric-by-metric.

Run:  python examples/sweep_and_report.py [output.json]
"""

import sys
from pathlib import Path

from repro.graph import make_dataset
from repro.reporting import compare_summaries, save_results, summarize
from repro.system import SystemConfig, simulate
from repro.workloads import get_workload

LLC_MULTIPLIERS = (1, 2, 4)
SETUPS = ("none", "stream", "droplet")


def main() -> None:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("sweep_results.json")

    graph = make_dataset("kron", scale_shift=-1)
    pr = get_workload("PR")
    run = pr.run(graph, max_refs=100_000, skip_refs=pr.recommended_skip(graph))

    summaries = []
    for mult in LLC_MULTIPLIERS:
        config = SystemConfig.scaled_baseline().with_llc_multiplier(mult)
        for setup in SETUPS:
            result = simulate(run, config=config, setup=setup)
            record = summarize(result)
            record["llc_multiplier"] = mult
            summaries.append(record)
            print(
                "llc=%dx setup=%-8s ipc=%.3f llc_mpki=%6.1f bpki=%6.1f"
                % (mult, setup, record["ipc"], record["llc_mpki"], record["bpki"])
            )

    save_results(summaries, out_path)
    print("\narchived %d runs to %s" % (len(summaries), out_path))

    # Pivot: cycles normalized to (1x, none).
    base = next(
        s for s in summaries if s["llc_multiplier"] == 1 and s["setup"] == "none"
    )
    print("\nspeedup over (1x LLC, no prefetch):")
    header = "llc  " + "".join("%10s" % s for s in SETUPS)
    print(header)
    for mult in LLC_MULTIPLIERS:
        row = "%-4s " % ("%dx" % mult)
        for setup in SETUPS:
            rec = next(
                s
                for s in summaries
                if s["llc_multiplier"] == mult and s["setup"] == setup
            )
            row += "%10.3f" % (base["cycles"] / rec["cycles"])
        print(row)

    # Metric-by-metric diff: what does DROPLET change at baseline LLC?
    droplet = next(
        s for s in summaries if s["llc_multiplier"] == 1 and s["setup"] == "droplet"
    )
    ratios = compare_summaries(base, droplet)
    print("\nDROPLET vs baseline (after/before ratios):")
    for key in ("cycles", "llc_mpki", "llc_mpki_property", "l2_hit_rate", "bpki"):
        if key in ratios:
            print("  %-18s %.3f" % (key, ratios[key]))
    print(
        "\ntakeaway: DROPLET at 1x LLC (%0.2fx) rivals quadrupling the LLC (%0.2fx)"
        % (
            base["cycles"] / droplet["cycles"],
            base["cycles"]
            / next(
                s
                for s in summaries
                if s["llc_multiplier"] == 4 and s["setup"] == "none"
            )["cycles"],
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Characterization walkthrough: the paper's §IV analyses on one workload.

Reproduces, for a chosen (workload, dataset) pair:

* the Fig. 1 cycle stack,
* the Fig. 3 instruction-window (ROB) sensitivity,
* the Fig. 4 LLC and L2 sensitivity,
* the Fig. 5/6 dependency-chain profile,
* the Fig. 7 per-data-type hierarchy usage,
* an exact reuse-distance profile per data type (the mechanism behind
  Observation #6).

Run:  python examples/characterize.py [workload] [dataset]
e.g.  python examples/characterize.py CC urand
"""

import sys

from repro.cache import reuse_distance_profile
from repro.characterization import (
    hierarchy_usage,
    l2_sweep,
    llc_sweep,
    profile_dependencies,
    rob_sweep,
)
from repro.graph import make_dataset
from repro.system import SystemConfig, simulate
from repro.trace import DataType
from repro.workloads import get_workload


def main(workload_name: str = "PR", dataset_name: str = "kron") -> None:
    workload = get_workload(workload_name)
    graph = make_dataset(dataset_name, weighted=workload.needs_weights)
    run = workload.run(
        graph, max_refs=150_000, skip_refs=workload.recommended_skip(graph)
    )
    config = SystemConfig.scaled_baseline()

    print("== Fig. 1: cycle stack (%s on %s) ==" % (workload_name, dataset_name))
    result = simulate(run, config=config)
    for component, fraction in result.cycle_stack.fractions().items():
        print("  %-6s %5.1f%%" % (component, 100 * fraction))
    print("  IPC %.3f, LLC MPKI %.1f" % (result.ipc, result.llc_mpki()))

    print("\n== Fig. 3: 4x instruction window ==")
    base, big = rob_sweep(run, config=config, rob_sizes=(128, 512))
    print(
        "  ROB 128 -> 512: speedup %.3f, bandwidth %.3f -> %.3f, MLP %.2f -> %.2f"
        % (
            big.speedup_vs(base),
            base.bandwidth_utilization,
            big.bandwidth_utilization,
            base.mlp,
            big.mlp,
        )
    )

    print("\n== Fig. 4a/4c: LLC capacity sweep ==")
    points = llc_sweep(run, config=config)
    for point in points:
        print(
            "  %4dKB LLC: MPKI %6.2f  speedup %.3f  offchip%% S/P/I = "
            "%.1f / %.1f / %.1f"
            % (
                point.size_bytes // 1024,
                point.llc_mpki,
                point.speedup_vs(points[0]),
                100 * point.offchip_fraction[DataType.STRUCTURE],
                100 * point.offchip_fraction[DataType.PROPERTY],
                100 * point.offchip_fraction[DataType.INTERMEDIATE],
            )
        )

    print("\n== Fig. 4b: private L2 sweep ==")
    l2_points = l2_sweep(run, config=config)
    l2_base = next(p for p in l2_points if p.label == "1x")
    for point in l2_points:
        print(
            "  %-12s hit rate %5.1f%%  speedup vs 1x: %.3f"
            % (point.label, 100 * point.l2_hit_rate, point.speedup_vs(l2_base))
        )

    print("\n== Fig. 5/6: dependency chains ==")
    profile = profile_dependencies(run.trace, config.rob_entries)
    for key, value in profile.as_row().items():
        if key != "trace":
            print("  %-20s %s" % (key, value))

    print("\n== Fig. 7: hierarchy usage by data type ==")
    usage = hierarchy_usage(result)
    for dt in DataType:
        fr = usage[dt].fractions
        print(
            "  %-12s L1 %5.1f%%  L2 %5.1f%%  L3 %5.1f%%  DRAM %5.1f%%"
            % (dt.short_name, 100 * fr["L1"], 100 * fr["L2"], 100 * fr["L3"], 100 * fr["DRAM"])
        )

    print("\n== Reuse distances (lines) — the mechanism behind Obs. #6 ==")
    reuse = reuse_distance_profile(run.trace)
    l2_lines = config.l2.num_lines
    l3_lines = config.l3.num_lines
    for dt in DataType:
        median = reuse.median(dt)
        beyond_l2 = reuse.fraction_beyond(dt, l2_lines)
        beyond_l3 = reuse.fraction_beyond(dt, l3_lines)
        print(
            "  %-12s median %8.0f   beyond-L2 %5.1f%%   beyond-LLC %5.1f%%"
            % (dt.short_name, median, 100 * beyond_l2, 100 * beyond_l3)
        )


if __name__ == "__main__":
    main(*sys.argv[1:3])

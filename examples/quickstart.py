#!/usr/bin/env python3
"""Quickstart: trace one graph workload and compare DROPLET to baselines.

This is the 60-second tour of the library:

1. generate a graph (a scaled stand-in for the paper's ``kron`` dataset),
2. run PageRank over it while recording the annotated memory trace,
3. replay the trace through the simulated machine under four prefetcher
   configurations,
4. print speedups, L2 hit rates, and prefetch accuracy.

Run:  python examples/quickstart.py
"""

from repro.graph import graph_stats, make_dataset
from repro.system import compare_setups
from repro.trace import DataType
from repro.workloads import get_workload


def main() -> None:
    # 1. A Kronecker (power-law) graph, ~1/8 the default experiment size
    #    so the script finishes in a few seconds.
    graph = make_dataset("kron", scale_shift=-1)
    print("dataset:", graph_stats(graph).as_row())

    # 2. Trace PageRank.  ``skip_refs`` fast-forwards past the start-up
    #    phase, like the paper's region-of-interest methodology.
    pagerank = get_workload("PR")
    run = pagerank.run(
        graph, max_refs=120_000, skip_refs=pagerank.recommended_skip(graph)
    )
    print(
        "traced %d refs (%d instructions) of %s"
        % (run.trace.num_refs, run.trace.num_instructions, run.trace.name)
    )

    # 3. Simulate under four configurations.
    results = compare_setups(run, setups=("none", "stream", "streamMPP1", "droplet"))

    # 4. Report.
    base = results["none"]
    print("\n%-12s %8s %8s %8s %10s %10s" % (
        "config", "speedup", "L2 hit", "BPKI", "acc(struct)", "acc(prop)"))
    for name, res in results.items():
        print(
            "%-12s %8.3f %8.3f %8.1f %10.2f %10.2f"
            % (
                name,
                res.speedup_vs(base),
                res.l2_hit_rate(),
                res.bpki(),
                res.prefetch_accuracy(DataType.STRUCTURE),
                res.prefetch_accuracy(DataType.PROPERTY),
            )
        )
    droplet = results["droplet"]
    print(
        "\nDROPLET speedup over no-prefetch: %.2fx  (paper band: 1.19x-2.02x)"
        % droplet.speedup_vs(base)
    )


if __name__ == "__main__":
    main()
